"""Allocation guard: prove a code path never materialises a dense matrix.

The sparse matching path's whole reason to exist is that it works in
O(n k) memory; a silent ``densify()`` (or any other n x n temporary
built through numpy's allocating constructors) would defeat it while
every test still passes on small inputs.  :func:`forbid_allocations`
patches ``np.empty`` / ``np.zeros`` / ``np.ones`` / ``np.full`` so any
allocation at or above a threshold raises :class:`DenseAllocationError`
— the sparse-path tests run matchers under the guard with the threshold
set to ``n_sources * n_targets``.

Scope: the guard sees allocations made through the ``numpy`` namespace
from Python (which covers :meth:`CandidateSet.densify`, the engine's
output buffers, and every transform in :mod:`repro.core`); it cannot
see C-level temporaries inside ufuncs or BLAS.  That is the right
granularity here — the n x n buffers the paper's Table 6 blames are all
explicit Python-side allocations.

Like the rest of :mod:`repro.testing`, nothing in the production import
graph imports this module.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

import numpy as np

#: The patched allocating constructors (name -> original).
_CONSTRUCTORS = ("empty", "zeros", "ones", "full")


class DenseAllocationError(AssertionError):
    """An allocation at or above the guarded threshold was attempted."""


def _shape_elements(shape: object) -> int:
    if isinstance(shape, (int, np.integer)):
        return max(int(shape), 0)
    try:
        return math.prod(max(int(side), 0) for side in shape)  # type: ignore[union-attr]
    except TypeError:
        return 0


@contextmanager
def forbid_allocations(threshold_elements: int) -> Iterator[None]:
    """Fail any numpy constructor allocation of >= ``threshold_elements``.

    Usage::

        with forbid_allocations(n * n):
            matcher.match_candidates(candidates)   # must stay sparse

    The patch is process-global while active (numpy's module attributes
    are shared), so keep guarded blocks single-threaded and short.
    """
    if threshold_elements < 1:
        raise ValueError(
            f"threshold_elements must be >= 1, got {threshold_elements}"
        )
    originals = {name: getattr(np, name) for name in _CONSTRUCTORS}

    def guarded(name: str, original):
        def wrapped(shape, *args, **kwargs):
            elements = _shape_elements(shape)
            if elements >= threshold_elements:
                raise DenseAllocationError(
                    f"np.{name}({shape!r}) would allocate {elements} elements; "
                    f"the guard forbids >= {threshold_elements}"
                )
            return original(shape, *args, **kwargs)

        return wrapped

    for name, original in originals.items():
        setattr(np, name, guarded(name, original))
    try:
        yield
    finally:
        for name, original in originals.items():
            setattr(np, name, original)
