"""Seedable fault injectors for the chaos test suite.

Each :class:`FaultInjector` instruments a live :class:`~repro.core.base.
Matcher` by shadowing its bound ``match`` with a wrapper that misbehaves
in one specific, *deterministic* way:

* :class:`EmbeddingCorruptor` — flips seeded entries of the input
  matrices to NaN, tripping the boundary validators
  (:class:`~repro.errors.DataIntegrityError`);
* :class:`KernelStall` — sleeps before delegating, simulating a stalled
  similarity kernel for deadline/watchdog tests (the stall is finite so
  abandoned worker threads drain instead of hanging the process);
* :class:`ForcedConvergenceFailure` — raises
  :class:`~repro.errors.ConvergenceError` for the first N calls (or
  until the matcher's temperature has been softened past a threshold),
  exercising the retry path;
* :class:`AllocationFailure` — raises ``MemoryError`` as a real
  allocator would, which the supervisor maps to
  :class:`~repro.errors.ResourceBudgetExceeded`;
* :class:`KilledWorkerInjector` — raises
  :class:`~repro.errors.WorkerCrashedError` for the first N calls, the
  signature a SIGKILL'd shard worker leaves, exercising the supervisor's
  process -> thread rung without spawning real processes.

The durability chaos suite also needs crashes that happen to *files*
rather than matchers: :class:`TornWriteInjector` interrupts a write at a
deterministic byte offset (and can retroactively tear an existing file),
simulating the torn artifacts a power cut leaves behind; the module-level
:func:`kill_current_worker` is a real-SIGKILL payload importable by
spawned pool workers.

Per-install state (RNG streams, call counters) lives in the wrapper
closure, so one injector instance drives many matchers through the
cartesian chaos sweep and every installation stays independently
deterministic under its seed.
"""

from __future__ import annotations

import os
import signal
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.base import Matcher, MatchResult
from repro.core.registry import create_matcher
from repro.errors import ConvergenceError, WorkerCrashedError
from repro.utils.rng import ensure_rng


def corrupt_embeddings(
    array: np.ndarray,
    fraction: float = 0.01,
    seed: int | np.random.Generator = 0,
    value: float = np.nan,
) -> np.ndarray:
    """Return a copy of ``array`` with seeded entries set to ``value``.

    At least one entry is corrupted whenever ``fraction > 0``, so tiny
    test matrices still trip the integrity checks.  Same seed + shape ->
    same corrupted positions.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    corrupted = np.array(array, dtype=np.float64, copy=True)
    if fraction == 0.0 or corrupted.size == 0:
        return corrupted
    rng = ensure_rng(seed)
    count = max(1, int(round(fraction * corrupted.size)))
    flat = rng.choice(corrupted.size, size=count, replace=False)
    corrupted.ravel()[flat] = value
    return corrupted


class FaultInjector(ABC):
    """Installs one deterministic misbehaviour onto a matcher."""

    #: Short name used in chaos-test ids and failure ledgers.
    name: str = "fault"

    def install(self, matcher: Matcher) -> Matcher:
        """Shadow ``matcher.match`` with the faulty wrapper; returns it."""
        inner = matcher.match
        matcher.match = self._wrap(matcher, inner)  # type: ignore[method-assign]
        return matcher

    @abstractmethod
    def _wrap(
        self,
        matcher: Matcher,
        inner: Callable[[np.ndarray, np.ndarray], MatchResult],
    ) -> Callable[[np.ndarray, np.ndarray], MatchResult]:
        """Build the faulty replacement for the bound ``match``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class EmbeddingCorruptor(FaultInjector):
    """Corrupts the input embeddings with NaNs at seeded positions."""

    name = "nan-embeddings"

    def __init__(self, fraction: float = 0.01, seed: int = 0, value: float = np.nan) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed
        self.value = value

    def _wrap(self, matcher, inner):
        rng = ensure_rng(self.seed)

        def match(source: np.ndarray, target: np.ndarray) -> MatchResult:
            return inner(
                corrupt_embeddings(source, self.fraction, rng, self.value),
                corrupt_embeddings(target, self.fraction, rng, self.value),
            )

        return match


class KernelStall(FaultInjector):
    """Stalls the similarity kernel for a fixed, finite duration."""

    name = "kernel-stall"

    def __init__(self, seconds: float = 0.25) -> None:
        if seconds <= 0:
            raise ValueError(f"seconds must be positive, got {seconds}")
        self.seconds = seconds

    def _wrap(self, matcher, inner):
        def match(source: np.ndarray, target: np.ndarray) -> MatchResult:
            time.sleep(self.seconds)
            return inner(source, target)

        return match


class ForcedConvergenceFailure(FaultInjector):
    """Raises :class:`ConvergenceError` until the run has been softened.

    With ``min_temperature`` set and the matcher exposing a
    ``temperature`` attribute, the fault clears once the supervisor's
    retry adjustment has raised the temperature past the threshold —
    the Sinkhorn overflow-and-retry scenario.  Otherwise the first
    ``failures`` calls fail and later calls succeed, which exercises
    plain bounded retry on any matcher.
    """

    name = "forced-divergence"

    def __init__(self, failures: int = 1, min_temperature: float | None = None) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        self.failures = failures
        self.min_temperature = min_temperature

    def _wrap(self, matcher, inner):
        calls = {"n": 0}

        def match(source: np.ndarray, target: np.ndarray) -> MatchResult:
            calls["n"] += 1
            temperature = getattr(matcher, "temperature", None)
            if self.min_temperature is not None and temperature is not None:
                if temperature < self.min_temperature:
                    raise ConvergenceError(
                        "injected divergence: temperature "
                        f"{temperature:g} below {self.min_temperature:g}",
                        temperature=temperature,
                        iteration=0,
                    )
                return inner(source, target)
            if calls["n"] <= self.failures:
                raise ConvergenceError(
                    f"injected divergence on call {calls['n']}/{self.failures}",
                    temperature=temperature,
                    iteration=0,
                )
            return inner(source, target)

        return match


class AllocationFailure(FaultInjector):
    """Simulates the allocator refusing the matcher's working set."""

    name = "allocation-failure"

    def __init__(self, nbytes: int = 2**34) -> None:
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        self.nbytes = nbytes

    def _wrap(self, matcher, inner):
        def match(source: np.ndarray, target: np.ndarray) -> MatchResult:
            raise MemoryError(
                f"injected allocation failure: unable to allocate {self.nbytes} bytes"
            )

        return match


class KilledWorkerInjector(FaultInjector):
    """Raises :class:`WorkerCrashedError` for the first N calls.

    The in-process stand-in for a SIGKILL'd shard worker: the error
    carries the backend and a plausible exit code (``-SIGKILL``), so the
    supervisor's process -> thread rung fires exactly as it would for a
    real broken pool — without the test paying spawn costs.  Later calls
    delegate cleanly (the "thread backend completes the run" half of the
    scenario).
    """

    name = "killed-worker"

    def __init__(self, failures: int = 1, exitcode: int = -signal.SIGKILL) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        self.failures = failures
        self.exitcode = exitcode

    def _wrap(self, matcher, inner):
        calls = {"n": 0}

        def match(source: np.ndarray, target: np.ndarray) -> MatchResult:
            calls["n"] += 1
            if calls["n"] <= self.failures:
                raise WorkerCrashedError(
                    f"injected worker crash on call {calls['n']}/{self.failures} "
                    f"(worker exit code {self.exitcode})",
                    backend="process",
                    exitcodes=(self.exitcode,),
                )
            return inner(source, target)

        return match


class TornWriteInjector:
    """Deterministically interrupted writes — the power-cut simulator.

    Not a :class:`FaultInjector` (it sabotages files, not matchers).
    ``seed`` and ``fraction`` pick the tear point: a write of N bytes is
    cut at ``offset = max(1, floor(u * N))`` with ``u`` drawn from the
    seeded stream, so every (seed, payload-size) pair tears at the same
    byte forever — the property that makes a crash-matrix suite
    reproducible.  ``offset`` pins the tear point exactly, overriding
    the stream.
    """

    def __init__(
        self,
        seed: int = 0,
        fraction: float | None = None,
        offset: int | None = None,
    ) -> None:
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if offset is not None and offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self.seed = seed
        self.fraction = fraction
        self.offset = offset
        self._rng = ensure_rng(seed)

    def tear_offset(self, nbytes: int) -> int:
        """The byte offset this injector tears a write of ``nbytes`` at."""
        if self.offset is not None:
            return min(self.offset, nbytes)
        u = self.fraction if self.fraction is not None else float(self._rng.random())
        return min(nbytes, max(1, int(u * nbytes))) if nbytes else 0

    def torn_write(self, path: Path | str, payload: bytes) -> int:
        """Write only the pre-tear prefix of ``payload`` to ``path``.

        What an in-place (non-atomic) write interrupted by a crash leaves
        behind.  Returns the number of bytes that made it to disk.
        """
        offset = self.tear_offset(len(payload))
        Path(path).write_bytes(payload[:offset])
        return offset

    def tear_file(self, path: Path | str) -> int:
        """Truncate an existing file at the injector's tear point.

        The retroactive form: let the real (atomic) writer finish, then
        simulate the crash by cutting the *visible* file — how the suite
        tears artifacts whose writers no longer expose a torn window.
        Returns the new size.
        """
        path = Path(path)
        offset = self.tear_offset(path.stat().st_size)
        with path.open("r+b") as handle:
            handle.truncate(offset)
        return offset

    def __repr__(self) -> str:
        return (
            f"TornWriteInjector(seed={self.seed}, fraction={self.fraction}, "
            f"offset={self.offset})"
        )


def kill_current_worker() -> None:  # pragma: no cover - dies by design
    """SIGKILL the calling process — submit to a pool to break it for real.

    Importable by spawn-context workers (unlike a test-local lambda), so
    the chaos suite can prove the no-hang guarantee against an actual
    dead process rather than a simulated one.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def default_injectors(stall_seconds: float = 0.2) -> list[FaultInjector]:
    """One instance of every injector — the chaos sweep's fault axis."""
    return [
        EmbeddingCorruptor(),
        KernelStall(seconds=stall_seconds),
        ForcedConvergenceFailure(),
        AllocationFailure(),
    ]


def faulty_factory(
    faults: Mapping[str, FaultInjector | Iterable[FaultInjector]],
    base: Callable[..., Matcher] | None = None,
) -> Callable[..., Matcher]:
    """A ``create_matcher``-compatible factory with faults pre-installed.

    ``faults`` maps matcher names to the injector(s) to install on each
    instance created under that name; unlisted matchers are built clean.
    Pass the result to ``run_experiment(matcher_factory=...)`` to drive
    a sweep with exactly one (or several) sabotaged matchers.
    """
    base = base or create_matcher

    def factory(name: str, **kwargs: object) -> Matcher:
        matcher = base(name, **kwargs)
        selected = faults.get(name, ())
        if isinstance(selected, FaultInjector):
            selected = (selected,)
        for injector in selected:
            injector.install(matcher)
        return matcher

    return factory
