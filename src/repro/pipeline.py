"""High-level entity-alignment pipeline.

The paper's Algorithm 1 as a single object: representation learning plus
embedding matching, operating directly on :class:`AlignmentTask` and
returning matched *entity names*.  This is the adoption-grade API — a
downstream user aligns two KGs in three lines::

    pipeline = AlignmentPipeline(RREAEncoder(), create_matcher("CSLS"))
    prediction = pipeline.align(task)
    prediction.pairs                 # [(source name, target name), ...]

The pipeline handles the evaluation protocol details that are easy to
get wrong: slicing to test queries/candidates, fitting learnable
matchers on seed links, mapping local matrix indices back to entity
names, and scoring against the gold links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Matcher, MatchResult
from repro.embedding.base import EmbeddingModel, UnifiedEmbeddings
from repro.eval.metrics import AlignmentMetrics, evaluate_pairs
from repro.index.config import IndexConfig, build_candidates
from repro.kg.pair import AlignmentTask
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import build_profile
from repro.runtime.supervisor import RunSupervisor, SupervisedRun, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine


@dataclass
class AlignmentPrediction:
    """The outcome of one pipeline run on one task."""

    #: Matched (source entity name, target entity name) pairs.
    pairs: list[tuple[str, str]]
    #: Final matcher scores, aligned with :attr:`pairs`.
    scores: np.ndarray
    #: Quality against the task's gold test links.
    metrics: AlignmentMetrics
    #: The raw matcher output (instrumentation included).
    raw: MatchResult
    #: The unified embeddings used (reusable for diagnostics).
    embeddings: UnifiedEmbeddings | None = field(repr=False, default=None)
    #: Supervision record when the pipeline ran under a policy: attempt
    #: ledger, fallback chain, and the triggering error (if degraded).
    supervision: SupervisedRun | None = field(repr=False, default=None)
    #: Observability profile document (spans, events, metric snapshot)
    #: when the pipeline ran with ``align(..., profile=True)``.
    profile: dict | None = field(repr=False, default=None)

    @property
    def degraded(self) -> bool:
        """Whether a degradation-ladder fallback produced this prediction."""
        return self.supervision is not None and self.supervision.degraded

    def as_dict(self) -> dict[str, str]:
        """Source -> target mapping (later pairs win on duplicates)."""
        return {source: target for source, target in self.pairs}


class AlignmentPipeline:
    """Representation learning + embedding matching, end to end.

    ``engine`` optionally supplies a shared
    :class:`~repro.similarity.engine.SimilarityEngine`: the matcher then
    derives S through it (parallel workers, float32 mode, and a score
    cache that pays off when several pipelines share one embedding space).

    ``policy`` (or a ready-made ``supervisor``) turns the matching stage
    into a supervised, bounded unit of work — deadline, memory budget,
    retry, degradation ladder; see :mod:`repro.runtime.supervisor`.  A
    terminal failure raises its typed :class:`~repro.errors.MatcherError`
    regardless of ``policy.on_error`` (a single-matcher pipeline has no
    partial result to continue with); a successful fallback returns a
    prediction whose :attr:`AlignmentPrediction.supervision` records the
    degradation.

    ``index`` (an :class:`~repro.index.config.IndexConfig`) switches the
    matching stage onto the sparse path: candidate lists are built per
    the config (exact streamed top-k or the IVF index) and the matcher
    runs :meth:`~repro.core.base.Matcher.match_candidates` on them —
    O(n k) working set for the sparse-aware matchers instead of the
    dense n x n score matrix.
    """

    def __init__(
        self,
        encoder: EmbeddingModel,
        matcher: Matcher,
        engine: "SimilarityEngine | None" = None,
        policy: SupervisorPolicy | None = None,
        supervisor: RunSupervisor | None = None,
        index: IndexConfig | None = None,
    ) -> None:
        self.encoder = encoder
        self.matcher = matcher
        if engine is not None:
            self.matcher.engine = engine
        if supervisor is None and policy is not None:
            supervisor = RunSupervisor(policy)
        self.supervisor = supervisor
        self.index = index

    def align(
        self,
        task: AlignmentTask,
        embeddings: UnifiedEmbeddings | None = None,
        profile: bool = False,
    ) -> AlignmentPrediction:
        """Run the full pipeline on ``task``.

        ``embeddings`` may be supplied to reuse a previous encoding (e.g.
        when comparing matchers on the same space); otherwise the
        pipeline's encoder is invoked.

        ``profile=True`` records the matching stage under a fresh trace
        recorder and scoped metrics registry and attaches the resulting
        schema-versioned document to :attr:`AlignmentPrediction.profile`.
        """
        if profile:
            with obs_trace.recording() as recorder, obs_metrics.scoped() as registry:
                prediction = self.align(task, embeddings, profile=False)
            prediction.profile = build_profile(
                recorder,
                registry,
                meta={"task": task.name, "matcher": self.matcher.name},
            )
            return prediction
        if embeddings is None:
            embeddings = self.encoder.encode(task)
        if embeddings.source.shape[0] != task.source.num_entities:
            raise ValueError(
                "embeddings rows do not match the task's source entities: "
                f"{embeddings.source.shape[0]} vs {task.source.num_entities}"
            )
        if embeddings.target.shape[0] != task.target.num_entities:
            raise ValueError(
                "embeddings rows do not match the task's target entities: "
                f"{embeddings.target.shape[0]} vs {task.target.num_entities}"
            )

        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        if len(queries) == 0 or len(candidates) == 0:
            raise ValueError("task has no test queries or candidates to align")

        self._fit_matcher(task, embeddings)
        source_slice = embeddings.source[queries]
        target_slice = embeddings.target[candidates]
        candidate_set = None
        if self.index is not None:
            candidate_set = build_candidates(
                source_slice,
                target_slice,
                self.index,
                engine=self.matcher.engine,
                metric=getattr(self.matcher, "metric", "cosine"),
            )
        supervision: SupervisedRun | None = None
        if self.supervisor is None:
            if candidate_set is None:
                result = self.matcher.match(source_slice, target_slice)
            else:
                result = self.matcher.match_candidates(candidate_set)
        else:
            supervision = self.supervisor.run(
                self.matcher,
                source_slice,
                target_slice,
                context={"task": task.name},
                candidates=candidate_set,
            )
            if not supervision.ok:
                raise supervision.error
            result = supervision.result

        gold = self._gold(task, queries, candidates)
        metrics = evaluate_pairs(result.pairs, gold)
        named = [
            (
                task.source.entities[queries[row]],
                task.target.entities[candidates[col]],
            )
            for row, col in result.pairs
        ]
        return AlignmentPrediction(
            pairs=named,
            scores=result.scores.copy(),
            metrics=metrics,
            raw=result,
            embeddings=embeddings,
            supervision=supervision,
        )

    # ------------------------------------------------------------------

    def _fit_matcher(self, task: AlignmentTask, embeddings: UnifiedEmbeddings) -> None:
        fit = getattr(self.matcher, "fit", None)
        if fit is None:
            return
        seed_pairs = task.seed_index_pairs()
        if len(seed_pairs):
            fit(embeddings.source, embeddings.target, seed_pairs)

    @staticmethod
    def _gold(
        task: AlignmentTask, queries: np.ndarray, candidates: np.ndarray
    ) -> list[tuple[int, int]]:
        query_pos = {int(entity): pos for pos, entity in enumerate(queries)}
        candidate_pos = {int(entity): pos for pos, entity in enumerate(candidates)}
        return [
            (query_pos[int(s)], candidate_pos[int(t)])
            for s, t in task.test_index_pairs()
        ]
