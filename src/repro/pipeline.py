"""High-level entity-alignment pipeline.

The paper's Algorithm 1 as a single object: representation learning plus
embedding matching, operating directly on :class:`AlignmentTask` and
returning matched *entity names*.  This is the adoption-grade API — a
downstream user aligns two KGs in three lines::

    pipeline = AlignmentPipeline(RREAEncoder(), create_matcher("CSLS"))
    prediction = pipeline.align(task)
    prediction.pairs                 # [(source name, target name), ...]

The pipeline handles the evaluation protocol details that are easy to
get wrong: slicing to test queries/candidates, fitting learnable
matchers on seed links, mapping local matrix indices back to entity
names, and scoring against the gold links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import Matcher, MatchResult
from repro.embedding.base import EmbeddingModel, UnifiedEmbeddings
from repro.eval.metrics import AlignmentMetrics, evaluate_pairs
from repro.index.config import IndexConfig, build_candidates
from repro.kg.pair import AlignmentTask
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.ledger import RunLedger, as_ledger, build_record, fingerprint_payload
from repro.obs.profile import build_profile
from repro.runtime.supervisor import RunSupervisor, SupervisedRun, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine


@dataclass
class AlignmentPrediction:
    """The outcome of one pipeline run on one task."""

    #: Matched (source entity name, target entity name) pairs.
    pairs: list[tuple[str, str]]
    #: Final matcher scores, aligned with :attr:`pairs`.
    scores: np.ndarray
    #: Quality against the task's gold test links.
    metrics: AlignmentMetrics
    #: The raw matcher output (instrumentation included).
    raw: MatchResult
    #: The unified embeddings used (reusable for diagnostics).
    embeddings: UnifiedEmbeddings | None = field(repr=False, default=None)
    #: Supervision record when the pipeline ran under a policy: attempt
    #: ledger, fallback chain, and the triggering error (if degraded).
    supervision: SupervisedRun | None = field(repr=False, default=None)
    #: Observability profile document (spans, events, metric snapshot)
    #: when the pipeline ran with ``align(..., profile=True)``.
    profile: dict | None = field(repr=False, default=None)

    @property
    def degraded(self) -> bool:
        """Whether a degradation-ladder fallback produced this prediction."""
        return self.supervision is not None and self.supervision.degraded

    def as_dict(self) -> dict[str, str]:
        """Source -> target mapping (later pairs win on duplicates)."""
        return {source: target for source, target in self.pairs}


class AlignmentPipeline:
    """Representation learning + embedding matching, end to end.

    ``engine`` optionally supplies a shared
    :class:`~repro.similarity.engine.SimilarityEngine`: the matcher then
    derives S through it (parallel workers, float32 mode, and a score
    cache that pays off when several pipelines share one embedding space).

    ``policy`` (or a ready-made ``supervisor``) turns the matching stage
    into a supervised, bounded unit of work — deadline, memory budget,
    retry, degradation ladder; see :mod:`repro.runtime.supervisor`.  A
    terminal failure raises its typed :class:`~repro.errors.MatcherError`
    regardless of ``policy.on_error`` (a single-matcher pipeline has no
    partial result to continue with); a successful fallback returns a
    prediction whose :attr:`AlignmentPrediction.supervision` records the
    degradation.

    ``index`` (an :class:`~repro.index.config.IndexConfig`) switches the
    matching stage onto the sparse path: candidate lists are built per
    the config (exact streamed top-k or the IVF index) and the matcher
    runs :meth:`~repro.core.base.Matcher.match_candidates` on them —
    O(n k) working set for the sparse-aware matchers instead of the
    dense n x n score matrix.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger` or a path)
    appends one durable, provenance-stamped record per :meth:`align`
    call — the same record shape the experiment runner writes, with the
    task name standing in for the preset and the regime recorded as
    ``"pipeline"``.
    """

    def __init__(
        self,
        encoder: EmbeddingModel,
        matcher: Matcher,
        engine: "SimilarityEngine | None" = None,
        policy: SupervisorPolicy | None = None,
        supervisor: RunSupervisor | None = None,
        index: IndexConfig | None = None,
        ledger: "RunLedger | str | None" = None,
    ) -> None:
        self.encoder = encoder
        self.matcher = matcher
        if engine is not None:
            self.matcher.engine = engine
        if supervisor is None and policy is not None:
            supervisor = RunSupervisor(policy)
        self.supervisor = supervisor
        self.index = index
        self.ledger = as_ledger(ledger)

    def align(
        self,
        task: AlignmentTask,
        embeddings: UnifiedEmbeddings | None = None,
        profile: bool = False,
    ) -> AlignmentPrediction:
        """Run the full pipeline on ``task``.

        ``embeddings`` may be supplied to reuse a previous encoding (e.g.
        when comparing matchers on the same space); otherwise the
        pipeline's encoder is invoked.

        ``profile=True`` records the matching stage under a fresh trace
        recorder and scoped metrics registry and attaches the resulting
        schema-versioned document to :attr:`AlignmentPrediction.profile`.
        """
        if profile:
            with obs_trace.recording() as recorder, obs_metrics.scoped() as registry:
                prediction = self.align(task, embeddings, profile=False)
            prediction.profile = build_profile(
                recorder,
                registry,
                meta={"task": task.name, "matcher": self.matcher.name},
            )
            return prediction
        obs_events.emit(
            "pipeline.align.start", task=task.name, matcher=self.matcher.name
        )
        if embeddings is None:
            embeddings = self.encoder.encode(task)
        if embeddings.source.shape[0] != task.source.num_entities:
            raise ValueError(
                "embeddings rows do not match the task's source entities: "
                f"{embeddings.source.shape[0]} vs {task.source.num_entities}"
            )
        if embeddings.target.shape[0] != task.target.num_entities:
            raise ValueError(
                "embeddings rows do not match the task's target entities: "
                f"{embeddings.target.shape[0]} vs {task.target.num_entities}"
            )

        queries = task.test_query_ids()
        candidates = task.candidate_target_ids()
        if len(queries) == 0 or len(candidates) == 0:
            raise ValueError("task has no test queries or candidates to align")

        self._fit_matcher(task, embeddings)
        source_slice = embeddings.source[queries]
        target_slice = embeddings.target[candidates]
        candidate_set = None
        if self.index is not None:
            candidate_set = build_candidates(
                source_slice,
                target_slice,
                self.index,
                engine=self.matcher.engine,
                metric=getattr(self.matcher, "metric", "cosine"),
            )
        supervision: SupervisedRun | None = None
        if self.supervisor is None:
            if candidate_set is None:
                result = self.matcher.match(source_slice, target_slice)
            else:
                result = self.matcher.match_candidates(candidate_set)
        else:
            supervision = self.supervisor.run(
                self.matcher,
                source_slice,
                target_slice,
                context={"task": task.name},
                candidates=candidate_set,
            )
            if not supervision.ok:
                # The failure still earns its durable record before the
                # typed error propagates — silence is not an outcome.
                self._record(task, supervision=supervision)
                obs_events.emit(
                    "pipeline.align.finish", task=task.name, status="failed",
                    error=type(supervision.error).__name__,
                )
                raise supervision.error
            result = supervision.result

        gold = self._gold(task, queries, candidates)
        metrics = evaluate_pairs(result.pairs, gold)
        named = [
            (
                task.source.entities[queries[row]],
                task.target.entities[candidates[col]],
            )
            for row, col in result.pairs
        ]
        self._record(task, supervision=supervision, metrics=metrics, result=result)
        obs_events.emit(
            "pipeline.align.finish", task=task.name, status="ok",
            f1=metrics.f1, pairs=len(named),
        )
        return AlignmentPrediction(
            pairs=named,
            scores=result.scores.copy(),
            metrics=metrics,
            raw=result,
            embeddings=embeddings,
            supervision=supervision,
        )

    # ------------------------------------------------------------------

    def _record(
        self,
        task: AlignmentTask,
        supervision: SupervisedRun | None,
        metrics: AlignmentMetrics | None = None,
        result: MatchResult | None = None,
    ) -> None:
        """Append one ledger record for this align() call (if opted in)."""
        if self.ledger is None:
            return
        matcher_name = self.matcher.name
        metric = getattr(self.matcher, "metric", "cosine")
        degraded = supervision is not None and supervision.degraded
        if metrics is None:
            status = "failed"
        else:
            status = "degraded" if degraded else "ok"
        error = None
        if supervision is not None and supervision.error is not None:
            error = {
                "type": type(supervision.error).__name__,
                "message": str(supervision.error),
            }
        engine = self.matcher.engine
        self.ledger.append(
            build_record(
                fingerprint=fingerprint_payload(
                    {"task": task.name, "matcher": matcher_name, "metric": metric}
                ),
                preset=task.name,
                regime="pipeline",
                task=task.name,
                matcher=matcher_name,
                # The pipeline has no sweep seed; -1 marks "not applicable".
                seed=-1,
                scale=1.0,
                metric=metric if isinstance(metric, str) else "cosine",
                status=status,
                metrics=None if metrics is None else {
                    "precision": metrics.precision,
                    "recall": metrics.recall,
                    "f1": metrics.f1,
                },
                seconds=result.seconds if result is not None else 0.0,
                peak_bytes=result.peak_bytes if result is not None else 0,
                attempts=len(supervision.attempts) if supervision is not None else 1,
                fallback=supervision.executed if degraded else None,
                chain=list(supervision.chain) if supervision is not None else [],
                error=error,
                engine=engine.cache_info() if engine is not None else None,
                resources=engine.resource_info() if engine is not None else None,
            )
        )

    def _fit_matcher(self, task: AlignmentTask, embeddings: UnifiedEmbeddings) -> None:
        fit = getattr(self.matcher, "fit", None)
        if fit is None:
            return
        seed_pairs = task.seed_index_pairs()
        if len(seed_pairs):
            fit(embeddings.source, embeddings.target, seed_pairs)

    @staticmethod
    def _gold(
        task: AlignmentTask, queries: np.ndarray, candidates: np.ndarray
    ) -> list[tuple[int, int]]:
        query_pos = {int(entity): pos for pos, entity in enumerate(queries)}
        candidate_pos = {int(entity): pos for pos, entity in enumerate(candidates)}
        return [
            (query_pos[int(s)], candidate_pos[int(t)])
            for s, t in task.test_index_pairs()
        ]
