"""Command-line interface: regenerate paper artifacts and run matchers.

Usage (after ``pip install -e .``)::

    python -m repro tables 4              # print Table 4
    python -m repro tables all -o out/    # regenerate every table to out/
    python -m repro figures 7             # print Figure 7's series
    python -m repro datasets list         # preset catalogue
    python -m repro datasets export dbp15k/zh_en -o data/dz   # OpenEA files
    python -m repro match dbp15k/zh_en --regime R --matcher CSLS
    python -m repro match dbp15k/zh_en --matcher Hun. \
        --timeout 30 --memory-budget 512 --retries 2 --on-error fallback
    python -m repro match dbp15k/zh_en --matcher Sink. --profile out.json
    python -m repro match dbp15k/zh_en --matcher CSLS --index ivf --k 50 --nprobe 4
    python -m repro match dbp15k/zh_en --matcher Hun. --ledger runs.jsonl --events -
    python -m repro index build dbp15k/zh_en --regime R -o out/zh_en.ivf.json
    python -m repro index stats out/zh_en.ivf.json
    python -m repro profile summarize out.json
    python -m repro explain dbp15k/zh_en --query 3        # Appendix D case study
    python -m repro runs list --ledger runs.jsonl
    python -m repro runs record --ledger runs.jsonl       # canonical seeded sweep
    python -m repro runs drift                            # gate vs committed bands
    python -m repro runs fsck --ledger runs.jsonl --repair  # truncate a torn tail
    python -m repro store verify out/embeddings.npy.store # checksum an embedding store
    python -m repro serve --store out/emb.store --index out/zh_en.ivf.json --port 8080
    python -m repro soak --store out/emb.store --index out/zh_en.ivf.json \
        --duration 30 --qps 100 --seed 0 --report soak.json
    python -m repro match dbp15k/zh_en --matcher Hun. --ledger runs.jsonl --resume
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Sequence

from repro.core.registry import available_matchers, create_matcher
from repro.datasets.zoo import list_presets, load_preset
from repro.errors import DataIntegrityError, MatcherError
from repro.eval.explain import explain_decision, format_report
from repro.eval.metrics import evaluate_pairs
from repro.experiments.figures import (
    figure4_top5_std,
    figure5_efficiency,
    figure6_csls_k,
    figure7_sinkhorn_l,
)
from repro.experiments.regimes import build_embeddings
from repro.experiments.report import generate_report
from repro.experiments.reporting import format_table
from repro.experiments.runner import _gold_local_pairs, run_experiment
from repro.experiments.tables import (
    table3_dataset_statistics,
    table4_structure_only,
    table5_auxiliary_information,
    table6_large_scale,
    table7_unmatchable,
    table8_non_one_to_one,
)
from repro.index import INDEX_KINDS, IndexConfig, IVFIndex, build_candidates
from repro.kg.io import save_alignment_task
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.drift import (
    DEFAULT_LEDGER_PATH,
    DEFAULT_REFERENCE_PATH,
    check_drift,
    load_reference,
    reference_configs,
)
from repro.experiments.resume import ResumePolicy
from repro.obs.ledger import RunLedger, build_record, fingerprint_payload
from repro.obs.profile import build_profile, load_profile, summarize, write_profile
from repro.runtime.supervisor import RunSupervisor, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine
from repro.storage import EmbeddingStore

_TABLES: dict[str, Callable] = {
    "3": table3_dataset_statistics,
    "4": table4_structure_only,
    "5": table5_auxiliary_information,
    "6": table6_large_scale,
    "7": table7_unmatchable,
    "8": table8_non_one_to_one,
}

_FIGURES: dict[str, Callable] = {
    "4": figure4_top5_std,
    "5": figure5_efficiency,
    "6": figure6_csls_k,
    "7": figure7_sinkhorn_l,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EntMatcher reproduction: regenerate the paper's artifacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tables = subparsers.add_parser("tables", help="regenerate a paper table")
    tables.add_argument("which", choices=[*_TABLES, "all"])
    tables.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier")
    tables.add_argument("--output", "-o", type=Path, default=None,
                        help="directory to also write the rendered tables to")

    figures = subparsers.add_parser("figures", help="regenerate a paper figure")
    figures.add_argument("which", choices=[*_FIGURES, "all"])
    figures.add_argument("--scale", type=float, default=1.0)

    datasets = subparsers.add_parser("datasets", help="dataset preset utilities")
    dataset_sub = datasets.add_subparsers(dest="dataset_command", required=True)
    dataset_sub.add_parser("list", help="list available presets")
    export = dataset_sub.add_parser("export", help="export a preset in OpenEA format")
    export.add_argument("preset")
    export.add_argument("--output", "-o", type=Path, required=True)
    export.add_argument("--scale", type=float, default=1.0)

    report = subparsers.add_parser(
        "report", help="regenerate every table and figure into one report"
    )
    report.add_argument("--output", "-o", type=Path, required=True)
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)

    match = subparsers.add_parser("match", help="run one matcher on one preset")
    match.add_argument("preset")
    match.add_argument("--regime", default="R",
                       help="embedding regime (R/G/N/NR/gcn/rrea)")
    match.add_argument("--matcher", default="DInf", choices=available_matchers())
    match.add_argument("--scale", type=float, default=1.0)
    match.add_argument("--workers", type=int, default=1,
                       help="threads for the similarity engine (0 = all cores)")
    match.add_argument("--backend", choices=["thread", "process"], default="thread",
                       help="shard execution backend: 'process' scores shards "
                            "in spawned workers over shared memory (bitwise-"
                            "identical to 'thread' at every worker count)")
    match.add_argument("--shard-rows", type=int, default=None, metavar="ROWS",
                       help="rows per similarity shard (default: sized from "
                            "the chunk/memory budget)")
    match.add_argument("--sharded-k", type=int, default=None, metavar="K",
                       help="with --on-error fallback: on a memory-budget "
                            "breach, rebuild the problem as blocked top-K "
                            "candidate lists (IVF coarse-to-fine) and rerun "
                            "the same matcher sparsely — the dense->sharded "
                            "rung, tried before --sparse-k's rung")
    match.add_argument("--dtype", choices=["float32", "float64"], default="float64",
                       help="similarity compute precision (float32 halves "
                            "memory bandwidth on the score matrix)")
    match.add_argument("--no-cache", action="store_true",
                       help="disable the engine's score-matrix cache")
    match.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="wall-clock deadline per matcher attempt")
    match.add_argument("--memory-budget", type=float, default=None, metavar="MIB",
                       help="peak declared working-set budget in MiB")
    match.add_argument("--on-error", choices=["raise", "skip", "fallback"],
                       default="raise",
                       help="terminal-failure handling: raise exits non-zero, "
                            "skip reports the failure, fallback walks the "
                            "degradation ladder (Hun.->Greedy, Sink.->CSLS)")
    match.add_argument("--retries", type=int, default=0,
                       help="extra attempts for retryable failures "
                            "(e.g. Sinkhorn divergence, retried at a higher "
                            "temperature with deterministic backoff)")
    match.add_argument("--sparse-k", type=int, default=None, metavar="K",
                       help="with --on-error fallback: on a memory-budget "
                            "breach, retry the same matcher sparsely on its "
                            "top-K candidate lists before any ladder hop")
    match.add_argument("--profile", type=Path, default=None, metavar="PATH",
                       help="record the run under the tracing layer and "
                            "write a schema-versioned JSON profile (spans, "
                            "events, metric counters) to PATH")
    match.add_argument("--ledger", type=Path, default=None, metavar="PATH",
                       help="append one provenance-stamped record for this "
                            "run to the JSONL run ledger at PATH "
                            "(see 'repro runs')")
    match.add_argument("--resume", action="store_true",
                       help="with --ledger: skip the run if the ledger already "
                            "holds an 'ok' record for this exact cell "
                            "(preset/regime/matcher/scale/metric); failed and "
                            "degraded cells re-run.  Reads the ledger "
                            "tolerantly, so a crash-torn tail does not block "
                            "resuming")
    match.add_argument("--durable", action="store_true",
                       help="fsync every ledger append (WAL durability): an "
                            "acknowledged record survives a crash or power "
                            "cut")
    match.add_argument("--events", default=None, metavar="PATH",
                       help="stream live telemetry events: '-' renders "
                            "human-readable lines on stderr, anything else "
                            "appends JSONL to that path")
    match.add_argument("--index", choices=INDEX_KINDS, default=None,
                       help="run the sparse matching path on candidate "
                            "lists: 'exact' streams the true top-k, 'ivf' "
                            "probes an inverted-file index — no dense n x n "
                            "matrix for sparse-aware matchers")
    match.add_argument("--k", type=int, default=50,
                       help="candidates kept per source row (with --index)")
    match.add_argument("--nprobe", type=int, default=4,
                       help="inverted lists scanned per query (--index ivf)")
    match.add_argument("--clusters", type=int, default=16,
                       help="coarse-quantizer clusters (--index ivf)")

    index = subparsers.add_parser(
        "index", help="build and inspect ANN candidate indexes"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser(
        "build", help="train an IVF index on a preset's target embeddings"
    )
    build.add_argument("preset")
    build.add_argument("--regime", default="R",
                       help="embedding regime (R/G/N/NR/gcn/rrea)")
    build.add_argument("--output", "-o", type=Path, required=True)
    build.add_argument("--scale", type=float, default=1.0)
    build.add_argument("--clusters", type=int, default=16)
    build.add_argument("--metric", default="cosine")
    build.add_argument("--events", default=None, metavar="PATH",
                       help="stream build progress events (k-means rounds, "
                            "list fill): '-' renders human-readable lines on "
                            "stderr, anything else appends JSONL to that path")
    stats = index_sub.add_parser(
        "stats", help="print a saved index's structure statistics"
    )
    stats.add_argument("path", type=Path)

    profile = subparsers.add_parser(
        "profile", help="inspect observability profiles"
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)
    summ = profile_sub.add_parser(
        "summarize", help="render a profile JSON as a flame-style text summary"
    )
    summ.add_argument("path", type=Path)

    explain = subparsers.add_parser(
        "explain",
        help="explain one query's matching decision (paper Appendix D)",
    )
    explain.add_argument("preset")
    explain.add_argument("--query", type=int, required=True, metavar="ID",
                         help="test-query row to explain (0-based position "
                              "in the preset's test split)")
    explain.add_argument("--regime", default="R",
                         help="embedding regime (R/G/N/NR/gcn/rrea)")
    explain.add_argument("--scale", type=float, default=1.0)
    explain.add_argument("--top-k", type=int, default=5,
                         help="candidates listed in the report")
    explain.add_argument("--csls-k", type=int, default=2,
                         help="CSLS neighbourhood size for the rescaled view")

    runs = subparsers.add_parser(
        "runs", help="inspect run-ledger files and watch for accuracy drift"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="one line per ledger record, oldest first"
    )
    runs_list.add_argument("--ledger", type=Path, default=DEFAULT_LEDGER_PATH)
    runs_list.add_argument("--status", choices=["ok", "degraded", "failed"],
                           default=None, help="only records with this status")
    runs_show = runs_sub.add_parser(
        "show", help="full JSON of one record, by run id (or unique prefix)"
    )
    runs_show.add_argument("run_id")
    runs_show.add_argument("--ledger", type=Path, default=DEFAULT_LEDGER_PATH)
    runs_diff = runs_sub.add_parser(
        "diff", help="per-cell metric deltas between two ledgers' latest records"
    )
    runs_diff.add_argument("old", type=Path)
    runs_diff.add_argument("new", type=Path)
    runs_record = runs_sub.add_parser(
        "record",
        help="run the canonical seeded reference sweep, appending to a ledger",
    )
    runs_record.add_argument("--ledger", type=Path, required=True)
    runs_drift = runs_sub.add_parser(
        "drift",
        help="check a ledger's latest records against committed reference "
             "bands; exits nonzero on violation",
    )
    runs_drift.add_argument("--ledger", type=Path, default=DEFAULT_LEDGER_PATH)
    runs_drift.add_argument("--reference", type=Path, default=DEFAULT_REFERENCE_PATH)
    runs_fsck = runs_sub.add_parser(
        "fsck",
        help="check a ledger for corruption; --repair truncates a torn tail "
             "(preserved in a .bak sidecar).  Exit 0 clean/repaired, 1 torn "
             "tail unrepaired, 2 mid-file corruption",
    )
    runs_fsck.add_argument("--ledger", type=Path, default=DEFAULT_LEDGER_PATH)
    runs_fsck.add_argument("--repair", action="store_true",
                           help="truncate a torn tail after copying it to "
                                "<ledger>.bak")

    store = subparsers.add_parser(
        "store", help="inspect memmap embedding stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="recompute an embedding store's payload checksum against its "
             "header; exits nonzero on corruption",
    )
    store_verify.add_argument("path", type=Path)

    serve = subparsers.add_parser(
        "serve",
        help="run the online alignment service over a store + index",
    )
    serve.add_argument("--store", type=Path, required=True,
                       help="sealed embedding store (see EmbeddingStore)")
    serve.add_argument("--index", type=Path, required=True,
                       help="persisted IVF index built over the store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks an ephemeral one)")
    serve.add_argument("--nprobe", type=int, default=None,
                       help="lists probed per query (default: all, exact)")
    serve.add_argument("--max-delta", type=int, default=64,
                       help="delta depth that triggers append compaction")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batcher coalescing cap")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="micro-batcher straggler wait in milliseconds")
    serve.add_argument("--events", default=None, metavar="PATH",
                       help="stream per-request events: '-' for human-readable "
                            "stderr, anything else appends JSONL to that path")
    serve.add_argument("--ledger", type=Path, default=None,
                       help="record served queries in this run ledger")
    serve.add_argument("--access-log", type=Path, default=None, metavar="PATH",
                       help="append one canonical-JSON line per request "
                            "(serve.access / serve.slow / serve.http) here")
    serve.add_argument("--slow-ms", type=float, default=100.0,
                       help="slow-query threshold in milliseconds: requests "
                            "over it log their captured span tree")
    serve.add_argument("--slo-objective", type=float, default=0.999,
                       help="SLO good-fraction objective for the burn-rate "
                            "tracker (default: three nines)")
    serve.add_argument("--slo-latency-ms", type=float, default=None,
                       help="count ok-but-slower-than-this requests as SLO "
                            "budget spend (default: errors only)")

    soak = subparsers.add_parser(
        "soak",
        help="replay a seeded open-loop traffic mix against the serving "
             "daemon and report tail latency + sustained QPS",
    )
    soak.add_argument("--store", type=Path, default=None,
                      help="embedding store to boot a daemon over "
                           "(with --index; omit both when using --url)")
    soak.add_argument("--index", type=Path, default=None,
                      help="persisted IVF index matching --store")
    soak.add_argument("--url", default=None,
                      help="drive an already-running daemon at this base URL "
                           "instead of booting a subprocess")
    soak.add_argument("--spec", type=Path, default=None,
                      help="WorkloadSpec JSON (CLI flags below override "
                           "its duration/qps/seed)")
    soak.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                      help="scheduled stream length (default 10s)")
    soak.add_argument("--qps", type=float, default=None,
                      help="target offered rate, open-loop (default 50)")
    soak.add_argument("--seed", type=int, default=None,
                      help="stream seed: same seed, same artifacts => "
                           "identical request stream (default 0)")
    soak.add_argument("--workers", type=int, default=16,
                      help="client threads firing the schedule")
    soak.add_argument("--report", type=Path, default=None, metavar="PATH",
                      help="write the schema-versioned SoakReport JSON here")
    soak.add_argument("--slo-p99-ms", type=float, default=None, metavar="MS",
                      help="gate mode: exit nonzero when p99 exceeds this "
                           "or any request errored/timed out")
    soak.add_argument("--events", default=None, metavar="PATH",
                      help="stream soak.* events: '-' for human-readable "
                           "stderr, anything else appends JSONL to that path")
    soak.add_argument("--metrics-out", type=Path, default=None, metavar="PATH",
                      help="snapshot the daemon's post-run /metrics "
                           "exposition to this file")
    soak.add_argument("--no-scrape", action="store_true",
                      help="skip the post-run /metrics scrape (drops the "
                           "report's server-side cross-check block)")

    obs = subparsers.add_parser(
        "obs", help="live telemetry utilities for a running daemon"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_scrape = obs_sub.add_parser(
        "scrape",
        help="snapshot a daemon's /metrics Prometheus exposition to a "
             "file (or stdout)",
    )
    obs_scrape.add_argument("--url", required=True,
                            help="daemon base URL, e.g. http://127.0.0.1:8080")
    obs_scrape.add_argument("--output", type=Path, default=None, metavar="PATH",
                            help="write the exposition document here "
                                 "(default: stdout)")
    return parser


def _emit_table(name: str, scale: float, output: Path | None) -> None:
    table = _TABLES[name](scale=scale)
    text = format_table(table.rows, title=table.title)
    print(text)
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"table{name}.txt").write_text(text + "\n", encoding="utf-8")


def _emit_figure(name: str, scale: float) -> None:
    figure = _FIGURES[name](scale=scale)
    print(figure.title)
    for series, points in figure.series.items():
        rendered = "  ".join(f"{x}:{y:.3f}" for x, y in points)
        print(f"  {series}: {rendered}")


def _run_match(
    preset: str,
    regime: str,
    matcher_name: str,
    scale: float,
    workers: int = 1,
    dtype: str = "float64",
    no_cache: bool = False,
    policy: SupervisorPolicy | None = None,
    profile_path: Path | None = None,
    index_config: IndexConfig | None = None,
    ledger_path: Path | None = None,
    events_spec: str | None = None,
    backend: str = "thread",
    shard_rows: int | None = None,
    resume: bool = False,
    durable: bool = False,
) -> int:
    matcher = create_matcher(matcher_name)
    metric = getattr(matcher, "metric", "cosine")
    if not isinstance(metric, str):
        metric = "cosine"
    if resume:
        if ledger_path is None:
            print("--resume requires --ledger", file=sys.stderr)
            return 2
        try:
            prior = _match_resume_record(
                ledger_path, preset, regime, matcher_name, scale, metric
            )
        except ValueError as err:
            print(f"corrupt ledger: {err}", file=sys.stderr)
            print("run 'repro runs fsck' to diagnose", file=sys.stderr)
            return 1
        if prior is not None:
            print(
                f"{matcher_name} on {preset} ({regime} regime): skipped — "
                f"ledger already holds an '{prior['status']}' record "
                f"(run {prior['run_id'][:12]}, {prior['created_at']})"
            )
            return 0
    task = load_preset(preset, scale=scale)
    embeddings = build_embeddings(task, regime, preset_name=preset)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    policy = policy or SupervisorPolicy()
    supervisor = RunSupervisor(policy)
    run_ledger = (
        RunLedger(ledger_path, durable=durable) if ledger_path is not None else None
    )
    with SimilarityEngine(
        workers=workers,
        dtype=dtype,
        cache=not no_cache,
        backend=backend,
        memory_budget=policy.memory_budget,
        chunk_rows=shard_rows,
    ) as engine:
        matcher.engine = engine
        recorder = registry = None
        with ExitStack() as stack:
            if events_spec is not None:
                sink = (
                    obs_events.HumanSink() if events_spec == "-"
                    else obs_events.JsonlSink(events_spec)
                )
                stack.enter_context(obs_events.emitting(sink))
            if profile_path is not None:
                recorder = stack.enter_context(obs_trace.recording())
                registry = stack.enter_context(obs_metrics.scoped())
            fit = getattr(matcher, "fit", None)
            if fit is not None and len(task.seed_index_pairs()):
                fit(embeddings.source, embeddings.target, task.seed_index_pairs())
            candidate_set = None
            if index_config is not None:
                candidate_set = build_candidates(
                    embeddings.source[queries],
                    embeddings.target[candidates],
                    index_config,
                    engine=engine,
                    metric=getattr(matcher, "metric", "cosine"),
                )
            run = supervisor.run(
                matcher,
                embeddings.source[queries],
                embeddings.target[candidates],
                name=matcher_name,
                context={"preset": preset, "regime": regime},
                candidates=candidate_set,
            )
        if not run.ok:
            # on_error="skip" (raise propagates before we get here).
            print(f"match failed: {run.describe()}", file=sys.stderr)
            if run_ledger is not None:
                run_ledger.append(_match_record(
                    preset=preset, regime=regime, matcher_name=matcher_name,
                    scale=scale, metric=metric, run=run, engine=engine,
                ))
            return 1
        result = run.result
        metrics = evaluate_pairs(
            result.pairs, _gold_local_pairs(task, queries, candidates)
        )
        executed = run.executed
        print(f"{matcher_name} on {preset} ({regime} regime)")
        if run.degraded:
            print(f"  DEGRADED: {run.describe()}")
        elif len(run.attempts) > 1:
            print(f"  retried: {len(run.attempts)} attempts")
        print(f"  precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
              f"F1={metrics.f1:.3f}" + (f" (by {executed})" if run.degraded else ""))
        print(f"  time={result.seconds:.3f}s peak={result.peak_bytes / 2**20:.1f}MiB")
        if candidate_set is not None:
            gold_pairs = _gold_local_pairs(task, queries, candidates)
            print(f"  index: kind={index_config.kind} k={index_config.k} "
                  f"nnz={candidate_set.nnz} "
                  f"recall={candidate_set.recall(gold_pairs):.3f}")
        print(f"  engine: workers={engine.workers} dtype={engine.dtype.name} "
              f"cache={engine.cache_info()}")
        profile_written: Path | None = None
        if profile_path is not None:
            document = build_profile(
                recorder,
                registry,
                meta={
                    "preset": preset,
                    "regime": regime,
                    "matcher": matcher_name,
                    "executed": executed,
                    "scale": scale,
                    "workers": engine.workers,
                    "dtype": engine.dtype.name,
                },
            )
            profile_written = write_profile(profile_path, document)
            print(f"  profile written to {profile_written}")
        if run_ledger is not None:
            run_ledger.append(_match_record(
                preset=preset, regime=regime, matcher_name=matcher_name,
                scale=scale, metric=metric, run=run, metrics=metrics,
                engine=engine, profile_path=profile_written,
            ))
    return 0


def _match_record(
    *,
    preset: str,
    regime: str,
    matcher_name: str,
    scale: float,
    metric: str,
    run,
    metrics=None,
    engine: SimilarityEngine | None = None,
    profile_path: Path | None = None,
) -> dict:
    """One ledger record for a ``repro match`` invocation."""
    status = "failed" if not run.ok else ("degraded" if run.degraded else "ok")
    error = None
    if run.error is not None:
        error = {"type": type(run.error).__name__, "message": str(run.error)}
    result = run.result
    return build_record(
        fingerprint=fingerprint_payload({
            "preset": preset, "regime": regime, "matcher": matcher_name,
            "scale": scale, "metric": metric,
        }),
        preset=preset,
        regime=regime,
        task=preset,
        matcher=matcher_name,
        # `repro match` builds embeddings at the regime default seed.
        seed=0,
        scale=scale,
        metric=metric,
        status=status,
        metrics=None if metrics is None else {
            "precision": metrics.precision,
            "recall": metrics.recall,
            "f1": metrics.f1,
        },
        seconds=result.seconds if result is not None else 0.0,
        peak_bytes=result.peak_bytes if result is not None else 0,
        attempts=len(run.attempts),
        fallback=run.executed if run.degraded else None,
        chain=list(run.chain),
        error=error,
        engine=engine.cache_info() if engine is not None else None,
        profile_path=str(profile_path) if profile_path is not None else None,
        resources=engine.resource_info() if engine is not None else None,
    )


def _match_resume_record(
    ledger_path: Path,
    preset: str,
    regime: str,
    matcher_name: str,
    scale: float,
    metric: str,
) -> dict | None:
    """The prior ledger record that lets ``--resume`` skip this run, or None.

    Same keying as the resumable sweep: the cell's config fingerprint
    (here ``repro match``'s identity payload) plus the matcher name;
    the latest record wins and the default :class:`ResumePolicy`
    decides (skip ``ok``, re-run ``failed``/``degraded``).  The ledger
    is read tolerantly — resuming after a crash is the whole point.
    """
    ledger = RunLedger(ledger_path)
    if not ledger.path.exists():
        return None
    fingerprint = fingerprint_payload({
        "preset": preset, "regime": regime, "matcher": matcher_name,
        "scale": scale, "metric": metric,
    })
    policy = ResumePolicy()
    latest: dict | None = None
    for record in ledger.records(strict=False):
        if record["fingerprint"] != fingerprint or record["matcher"] != matcher_name:
            continue
        latest = record if policy.satisfied_by(record["status"]) else None
    return latest


def _run_index_build(args: argparse.Namespace) -> int:
    """Train an IVF index on a preset's candidate-target embeddings."""
    task = load_preset(args.preset, scale=args.scale)
    embeddings = build_embeddings(task, args.regime, preset_name=args.preset)
    targets = embeddings.target[task.candidate_target_ids()]
    index = IVFIndex(
        n_clusters=min(args.clusters, targets.shape[0]), metric=args.metric
    )
    with ExitStack() as stack:
        events_spec = getattr(args, "events", None)
        if events_spec is not None:
            sink = (
                obs_events.HumanSink() if events_spec == "-"
                else obs_events.JsonlSink(events_spec)
            )
            stack.enter_context(obs_events.emitting(sink))
        index.train(targets).add(targets)
    written = index.save(args.output)
    print(f"index written to {written}")
    _print_index_stats(index)
    return 0


def _run_index_stats(path: Path) -> int:
    try:
        index = IVFIndex.load(path)
    except (OSError, ValueError, KeyError) as err:
        print(f"cannot load index {path}: {err}", file=sys.stderr)
        return 1
    _print_index_stats(index)
    return 0


def _print_index_stats(index: IVFIndex) -> None:
    for key, value in index.stats().items():
        rendered = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}={rendered}")


def _run_serve(args: argparse.Namespace) -> int:
    """Boot the online alignment daemon and block until SIGTERM/SIGINT."""
    import signal
    import threading

    from repro.serve.http import AlignmentServer
    from repro.serve.state import ServingState
    from repro.similarity.engine import SimilarityEngine

    with ExitStack() as stack:
        if args.events is not None:
            sink = (
                obs_events.HumanSink() if args.events == "-"
                else obs_events.JsonlSink(args.events)
            )
            stack.enter_context(obs_events.emitting(sink))
        try:
            state = ServingState.load(
                args.store, args.index, nprobe=args.nprobe, max_delta=args.max_delta
            )
        except (OSError, ValueError) as err:
            print(f"cannot load serving state: {err}", file=sys.stderr)
            return 1
        ledger = RunLedger(args.ledger) if args.ledger is not None else None
        server = AlignmentServer(
            (args.host, args.port),
            state,
            engine=SimilarityEngine(),
            ledger=ledger,
            max_batch=args.max_batch,
            max_wait=args.batch_wait_ms / 1000.0,
            slow_threshold=args.slow_ms / 1000.0,
            slo_objective=args.slo_objective,
            slo_latency_threshold=(
                args.slo_latency_ms / 1000.0
                if args.slo_latency_ms is not None else None
            ),
            access_log=args.access_log,
        )
        stack.callback(server.close)
        host, port = server.server_address[:2]

        def _shutdown(signum: int, frame: object) -> None:
            # shutdown() must run off the serve_forever thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
        print(f"serving on http://{host}:{port}", flush=True)
        obs_events.emit("serve.start", host=host, port=port)
        server.serve_forever()
        obs_events.emit("serve.stop")
        print("serve: shut down cleanly", flush=True)
    return 0


def _run_soak(args: argparse.Namespace) -> int:
    """Replay a seeded traffic mix and print/persist the soak report."""
    import dataclasses

    from repro.loadgen import ServeDaemon, SoakRunner, WorkloadSpec
    from repro.loadgen.report import server_latency_summary
    from repro.obs.histogram import DEFAULT_LATENCY_BOUNDS, bucket_width_at

    if args.url is None and (args.store is None or args.index is None):
        print("soak needs either --url or both --store and --index",
              file=sys.stderr)
        return 2
    try:
        spec = (
            WorkloadSpec.load(args.spec) if args.spec is not None
            else WorkloadSpec()
        )
        overrides = {
            name: value
            for name, value in (
                ("duration_seconds", args.duration),
                ("qps", args.qps),
                ("seed", args.seed),
            )
            if value is not None
        }
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
    except (OSError, ValueError, TypeError) as err:
        print(f"bad workload spec: {err}", file=sys.stderr)
        return 2

    with ExitStack() as stack:
        if args.events is not None:
            sink = (
                obs_events.HumanSink() if args.events == "-"
                else obs_events.JsonlSink(args.events)
            )
            stack.enter_context(obs_events.emitting(sink))
        if args.url is not None:
            url = args.url
        else:
            try:
                daemon = stack.enter_context(
                    ServeDaemon(args.store, args.index)
                )
            except (OSError, RuntimeError, ValueError) as err:
                print(f"cannot boot daemon for soak: {err}", file=sys.stderr)
                return 1
            url = daemon.url
        runner = SoakRunner(url, workers=args.workers)
        try:
            report = runner.run(spec)
        except (OSError, ValueError) as err:
            print(f"soak run failed: {err}", file=sys.stderr)
            return 1
        # Server-side accounting: scrape the daemon's /metrics while it
        # is still up, so the report carries both sides of the story.
        if not args.no_scrape:
            try:
                metrics_text = runner.scrape_metrics()
            except (OSError, ValueError) as err:
                print(f"soak: /metrics scrape failed: {err}", file=sys.stderr)
            else:
                server: dict[str, object] = {}
                latency = server_latency_summary(metrics_text)
                if latency is not None:
                    server["latency"] = latency
                try:
                    server["slo"] = runner.probe().get("slo")
                except (OSError, ValueError):
                    pass
                if server:
                    report = dataclasses.replace(report, server=server)
                if args.metrics_out is not None:
                    args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
                    args.metrics_out.write_text(metrics_text, encoding="utf-8")
                    print(f"metrics snapshot written to {args.metrics_out}")

    print(f"soak: seed={spec.seed} stream={report.stream_fingerprint}")
    for line in report.summary_lines():
        print(line)
    if args.report is not None:
        report.save(args.report)
        print(f"report written to {args.report}")
    if args.slo_p99_ms is not None:
        p99_ms = report.latency.get("p99_seconds", 0.0) * 1e3
        breaches = []
        if p99_ms > args.slo_p99_ms:
            breaches.append(
                f"p99 {p99_ms:.2f}ms exceeds SLO {args.slo_p99_ms:.2f}ms"
            )
        if report.errors:
            breaches.append(f"{report.errors} requests errored")
        if report.timeouts:
            breaches.append(f"{report.timeouts} requests timed out")
        server_latency = (report.server or {}).get("latency") or {}
        if server_latency:
            # Cross-check: the daemon's own histogram must agree with
            # the client's stopwatch.  The client p99 includes connect
            # and scheduling overhead the server never sees, so the
            # honest tolerance is one histogram bucket width at the
            # observed tail (DESIGN.md §14) — a larger gap means one
            # side is mismeasuring.
            server_p99_ms = server_latency.get("p99_seconds", 0.0) * 1e3
            if server_p99_ms > args.slo_p99_ms:
                breaches.append(
                    f"server-side p99 {server_p99_ms:.2f}ms exceeds SLO "
                    f"{args.slo_p99_ms:.2f}ms"
                )
            width_ms = bucket_width_at(
                DEFAULT_LATENCY_BOUNDS, max(p99_ms, server_p99_ms) / 1e3
            ) * 1e3
            if abs(p99_ms - server_p99_ms) > width_ms:
                breaches.append(
                    f"client p99 {p99_ms:.2f}ms and server p99 "
                    f"{server_p99_ms:.2f}ms disagree by more than one "
                    f"bucket width ({width_ms:.2f}ms)"
                )
        if breaches:
            print("soak SLO FAILED: " + "; ".join(breaches), file=sys.stderr)
            return 1
        print("soak SLO passed")
    return 0


def _run_obs_scrape(args: argparse.Namespace) -> int:
    """Snapshot a daemon's /metrics exposition to a file or stdout."""
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as err:
        print(f"cannot scrape {url}: {err}", file=sys.stderr)
        return 1
    if args.output is None:
        print(text, end="")
    else:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text, encoding="utf-8")
        print(f"metrics snapshot written to {args.output}")
    return 0


def _match_index_config(args: argparse.Namespace) -> IndexConfig | None:
    """Candidate-generation config from the ``match`` subcommand's flags."""
    if args.index is None:
        return None
    return IndexConfig(
        kind=args.index, k=args.k, nprobe=args.nprobe, n_clusters=args.clusters
    )


def _match_policy(args: argparse.Namespace) -> SupervisorPolicy:
    """Supervisor policy from the ``match`` subcommand's flags."""
    budget = args.memory_budget
    return SupervisorPolicy(
        timeout=args.timeout,
        memory_budget=int(budget * 2**20) if budget is not None else None,
        retries=args.retries,
        on_error=args.on_error,
        sparse_k=args.sparse_k,
        sharded_k=args.sharded_k,
    )


def _run_explain(args: argparse.Namespace) -> int:
    """Render one query's decision report (the paper's Appendix D view)."""
    task = load_preset(args.preset, scale=args.scale)
    embeddings = build_embeddings(task, args.regime, preset_name=args.preset)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    if not 0 <= args.query < len(queries):
        print(
            f"--query must be in [0, {len(queries)}) for {args.preset} "
            f"at scale {args.scale}",
            file=sys.stderr,
        )
        return 1
    with SimilarityEngine() as engine:
        scores = engine.similarity(
            embeddings.source[queries], embeddings.target[candidates]
        )
    try:
        report = explain_decision(
            scores, args.query, top_k=args.top_k, csls_k=args.csls_k
        )
    except ValueError as err:
        print(f"cannot explain query {args.query}: {err}", file=sys.stderr)
        return 1
    candidate_names = {
        pos: task.target.entities[int(entity)]
        for pos, entity in enumerate(candidates)
    }
    query_name = task.source.entities[int(queries[args.query])]
    print(format_report(
        report, query_name=query_name, candidate_names=candidate_names
    ))
    return 0


def _read_ledger(path: Path) -> list[dict] | None:
    """Load and validate a ledger file; report problems on stderr.

    Tolerant of a torn tail (an interrupted final append): the complete
    records are used and the tear is reported as a warning with the
    repair command — so a crash mid-sweep never takes ``runs
    list/show/diff/drift`` down with it.  Mid-file corruption still
    fails hard.
    """
    ledger = RunLedger(path)
    if not ledger.path.exists():
        print(f"no ledger at {path}", file=sys.stderr)
        return None
    try:
        scan = ledger.scan()
    except ValueError as err:
        print(f"corrupt ledger: {err}", file=sys.stderr)
        return None
    if scan.torn is not None:
        print(
            f"warning: {path}:{scan.torn.lineno}: {scan.torn.reason}; "
            f"using {len(scan.records)} complete record"
            f"{'s' if len(scan.records) != 1 else ''} "
            f"(run 'repro runs fsck --repair' to clean up)",
            file=sys.stderr,
        )
    return scan.records


def _record_line(record: dict) -> str:
    """One ``runs list`` line: identity, status, accuracy, cost."""
    metrics = record["metrics"] or {}
    f1 = metrics.get("f1")
    f1_text = f"f1={f1:.3f}" if f1 is not None else "f1=  -  "
    cell = f"{record['preset']}/{record['regime']}"
    return (
        f"{record['run_id'][:12]}  {record['created_at']}  "
        f"{record['status']:<8s} {cell:<24s} {record['matcher']:<8s} "
        f"{f1_text}  {record['seconds']:7.3f}s"
    )


def _runs_list(args: argparse.Namespace) -> int:
    records = _read_ledger(args.ledger)
    if records is None:
        return 1
    for record in records:
        if args.status is not None and record["status"] != args.status:
            continue
        print(_record_line(record))
    return 0


def _runs_show(args: argparse.Namespace) -> int:
    records = _read_ledger(args.ledger)
    if records is None:
        return 1
    matches = [r for r in records if r["run_id"].startswith(args.run_id)]
    if not matches:
        print(f"no record with run id {args.run_id!r}", file=sys.stderr)
        return 1
    if len(matches) > 1 and any(r["run_id"] != matches[0]["run_id"] for r in matches):
        print(f"run id prefix {args.run_id!r} is ambiguous "
              f"({len(matches)} records)", file=sys.stderr)
        return 1
    print(json.dumps(matches[-1], indent=2, sort_keys=False))
    return 0


def _cell_f1(record: dict) -> float | None:
    return (record["metrics"] or {}).get("f1")


def _runs_diff(args: argparse.Namespace) -> int:
    old_records = _read_ledger(args.old)
    new_records = _read_ledger(args.new)
    if old_records is None or new_records is None:
        return 1
    old = RunLedger(args.old).latest_cells(strict=False)
    new = RunLedger(args.new).latest_cells(strict=False)
    for key in sorted(set(old) | set(new)):
        label = "/".join(key)
        if key not in old:
            f1 = _cell_f1(new[key])
            value = f"{f1:.3f}" if f1 is not None else new[key]["status"]
            print(f"+ {label}: only in {args.new} (f1={value})")
        elif key not in new:
            print(f"- {label}: only in {args.old}")
        else:
            f1_old, f1_new = _cell_f1(old[key]), _cell_f1(new[key])
            if f1_old is None or f1_new is None:
                print(f"! {label}: {old[key]['status']} -> {new[key]['status']}")
            else:
                delta = f1_new - f1_old
                marker = "=" if abs(delta) < 1e-9 else "!"
                print(f"{marker} {label}: f1 {f1_old:.3f} -> {f1_new:.3f} "
                      f"({delta:+.3f})")
    return 0


def _runs_record(args: argparse.Namespace) -> int:
    """Run the canonical seeded sweep, appending one record per cell."""
    ledger = RunLedger(args.ledger)
    for config in reference_configs():
        result = run_experiment(config, ledger=ledger)
        print(
            f"recorded {config.preset} ({config.input_regime} regime, "
            f"seed={config.seed}, scale={config.scale}): "
            f"{len(result.runs)} ok, {len(result.failures)} failed"
        )
    print(f"ledger at {args.ledger}")
    return 0


def _runs_fsck(args: argparse.Namespace) -> int:
    """Check a ledger for torn/corrupt lines; optionally repair the tail."""
    ledger = RunLedger(args.ledger)
    if not ledger.path.exists():
        print(f"no ledger at {args.ledger}", file=sys.stderr)
        return 1
    report = ledger.fsck(repair=args.repair)
    if report.error is not None:
        print(f"UNREPAIRABLE: {report.error}", file=sys.stderr)
        print(
            "mid-file corruption cannot be truncated away without losing "
            "good records; restore the ledger from backup",
            file=sys.stderr,
        )
        return 2
    if report.torn is None:
        print(f"{args.ledger}: clean ({report.n_records} records)")
        return 0
    if report.repaired:
        print(
            f"{args.ledger}: repaired — truncated {report.torn.nbytes} torn "
            f"bytes at line {report.torn.lineno} "
            f"(preserved in {report.backup}); {report.n_records} records remain"
        )
        return 0
    print(
        f"{args.ledger}:{report.torn.lineno}: {report.torn.reason}; "
        f"{report.n_records} complete records; re-run with --repair to "
        f"truncate the tail into {args.ledger}.bak",
        file=sys.stderr,
    )
    return 1


def _store_verify(args: argparse.Namespace) -> int:
    """Recompute an embedding store's checksum against its header."""
    try:
        with EmbeddingStore.open(args.path) as store:
            if store.seal_state == "unsealed":
                print(
                    f"UNSEALED: {args.path} was created but never sealed "
                    f"(interrupted mid-fill, or missing update_checksum()); "
                    f"contents cannot be trusted — rebuild the store",
                    file=sys.stderr,
                )
                return 1
            report = store.verify()
    except OSError as err:
        print(f"cannot open store {args.path}: {err}", file=sys.stderr)
        return 1
    except DataIntegrityError as err:
        print(f"CORRUPT: {err}", file=sys.stderr)
        return 1
    if not report["verified"]:
        print(
            f"{args.path}: no checksum recorded (written before the "
            f"durability layer); payload hashes to "
            f"{report['algorithm']}:{report['computed']}"
        )
        return 0
    print(
        f"{args.path}: ok — {report['nbytes']} payload bytes match "
        f"{report['algorithm']}:{report['computed']}"
    )
    return 0


def _runs_drift(args: argparse.Namespace) -> int:
    try:
        reference = load_reference(args.reference)
    except (OSError, ValueError) as err:
        print(f"cannot load reference {args.reference}: {err}", file=sys.stderr)
        return 1
    records = _read_ledger(args.ledger)
    if records is None:
        return 1
    report = check_drift(records, reference)
    print(report.describe())
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        names = list(_TABLES) if args.which == "all" else [args.which]
        for name in names:
            _emit_table(name, args.scale, args.output)
        return 0
    if args.command == "figures":
        names = list(_FIGURES) if args.which == "all" else [args.which]
        for name in names:
            _emit_figure(name, args.scale)
        return 0
    if args.command == "datasets":
        if args.dataset_command == "list":
            for preset in list_presets():
                print(preset)
            return 0
        task = load_preset(args.preset, scale=args.scale)
        directory = save_alignment_task(task, args.output)
        print(f"exported {args.preset} to {directory}")
        return 0
    if args.command == "report":
        path = generate_report(args.output, scale=args.scale, seed=args.seed)
        print(f"report written to {path}")
        return 0
    if args.command == "match":
        try:
            return _run_match(
                args.preset, args.regime, args.matcher, args.scale,
                workers=args.workers, dtype=args.dtype, no_cache=args.no_cache,
                policy=_match_policy(args), profile_path=args.profile,
                index_config=_match_index_config(args),
                ledger_path=args.ledger, events_spec=args.events,
                backend=args.backend, shard_rows=args.shard_rows,
                resume=args.resume, durable=args.durable,
            )
        except MatcherError as err:
            # --on-error raise tripped: one-line summary, non-zero exit.
            print(
                f"match failed: {type(err).__name__}: {err}", file=sys.stderr
            )
            return 1
    if args.command == "index":
        if args.index_command == "build":
            return _run_index_build(args)
        return _run_index_stats(args.path)
    if args.command == "profile":
        try:
            print(summarize(load_profile(args.path)))
        except (OSError, ValueError) as err:
            print(f"cannot summarize {args.path}: {err}", file=sys.stderr)
            return 1
        return 0
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "soak":
        return _run_soak(args)
    if args.command == "runs":
        handlers = {
            "list": _runs_list,
            "show": _runs_show,
            "diff": _runs_diff,
            "record": _runs_record,
            "drift": _runs_drift,
            "fsck": _runs_fsck,
        }
        return handlers[args.runs_command](args)
    if args.command == "store":
        return _store_verify(args)
    if args.command == "obs":
        return _run_obs_scrape(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
