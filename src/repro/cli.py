"""Command-line interface: regenerate paper artifacts and run matchers.

Usage (after ``pip install -e .``)::

    python -m repro tables 4              # print Table 4
    python -m repro tables all -o out/    # regenerate every table to out/
    python -m repro figures 7             # print Figure 7's series
    python -m repro datasets list         # preset catalogue
    python -m repro datasets export dbp15k/zh_en -o data/dz   # OpenEA files
    python -m repro match dbp15k/zh_en --regime R --matcher CSLS
    python -m repro match dbp15k/zh_en --matcher Hun. \
        --timeout 30 --memory-budget 512 --retries 2 --on-error fallback
    python -m repro match dbp15k/zh_en --matcher Sink. --profile out.json
    python -m repro match dbp15k/zh_en --matcher CSLS --index ivf --k 50 --nprobe 4
    python -m repro index build dbp15k/zh_en --regime R -o out/zh_en.ivf.json
    python -m repro index stats out/zh_en.ivf.json
    python -m repro profile summarize out.json
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Sequence

from repro.core.registry import available_matchers, create_matcher
from repro.datasets.zoo import list_presets, load_preset
from repro.errors import MatcherError
from repro.eval.metrics import evaluate_pairs
from repro.experiments.figures import (
    figure4_top5_std,
    figure5_efficiency,
    figure6_csls_k,
    figure7_sinkhorn_l,
)
from repro.experiments.regimes import build_embeddings
from repro.experiments.report import generate_report
from repro.experiments.reporting import format_table
from repro.experiments.runner import _gold_local_pairs
from repro.experiments.tables import (
    table3_dataset_statistics,
    table4_structure_only,
    table5_auxiliary_information,
    table6_large_scale,
    table7_unmatchable,
    table8_non_one_to_one,
)
from repro.index import INDEX_KINDS, IndexConfig, IVFIndex, build_candidates
from repro.kg.io import save_alignment_task
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import build_profile, load_profile, summarize, write_profile
from repro.runtime.supervisor import RunSupervisor, SupervisorPolicy
from repro.similarity.engine import SimilarityEngine

_TABLES: dict[str, Callable] = {
    "3": table3_dataset_statistics,
    "4": table4_structure_only,
    "5": table5_auxiliary_information,
    "6": table6_large_scale,
    "7": table7_unmatchable,
    "8": table8_non_one_to_one,
}

_FIGURES: dict[str, Callable] = {
    "4": figure4_top5_std,
    "5": figure5_efficiency,
    "6": figure6_csls_k,
    "7": figure7_sinkhorn_l,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EntMatcher reproduction: regenerate the paper's artifacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tables = subparsers.add_parser("tables", help="regenerate a paper table")
    tables.add_argument("which", choices=[*_TABLES, "all"])
    tables.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier")
    tables.add_argument("--output", "-o", type=Path, default=None,
                        help="directory to also write the rendered tables to")

    figures = subparsers.add_parser("figures", help="regenerate a paper figure")
    figures.add_argument("which", choices=[*_FIGURES, "all"])
    figures.add_argument("--scale", type=float, default=1.0)

    datasets = subparsers.add_parser("datasets", help="dataset preset utilities")
    dataset_sub = datasets.add_subparsers(dest="dataset_command", required=True)
    dataset_sub.add_parser("list", help="list available presets")
    export = dataset_sub.add_parser("export", help="export a preset in OpenEA format")
    export.add_argument("preset")
    export.add_argument("--output", "-o", type=Path, required=True)
    export.add_argument("--scale", type=float, default=1.0)

    report = subparsers.add_parser(
        "report", help="regenerate every table and figure into one report"
    )
    report.add_argument("--output", "-o", type=Path, required=True)
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)

    match = subparsers.add_parser("match", help="run one matcher on one preset")
    match.add_argument("preset")
    match.add_argument("--regime", default="R",
                       help="embedding regime (R/G/N/NR/gcn/rrea)")
    match.add_argument("--matcher", default="DInf", choices=available_matchers())
    match.add_argument("--scale", type=float, default=1.0)
    match.add_argument("--workers", type=int, default=1,
                       help="threads for the similarity engine (0 = all cores)")
    match.add_argument("--dtype", choices=["float32", "float64"], default="float64",
                       help="similarity compute precision (float32 halves "
                            "memory bandwidth on the score matrix)")
    match.add_argument("--no-cache", action="store_true",
                       help="disable the engine's score-matrix cache")
    match.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="wall-clock deadline per matcher attempt")
    match.add_argument("--memory-budget", type=float, default=None, metavar="MIB",
                       help="peak declared working-set budget in MiB")
    match.add_argument("--on-error", choices=["raise", "skip", "fallback"],
                       default="raise",
                       help="terminal-failure handling: raise exits non-zero, "
                            "skip reports the failure, fallback walks the "
                            "degradation ladder (Hun.->Greedy, Sink.->CSLS)")
    match.add_argument("--retries", type=int, default=0,
                       help="extra attempts for retryable failures "
                            "(e.g. Sinkhorn divergence, retried at a higher "
                            "temperature with deterministic backoff)")
    match.add_argument("--sparse-k", type=int, default=None, metavar="K",
                       help="with --on-error fallback: on a memory-budget "
                            "breach, retry the same matcher sparsely on its "
                            "top-K candidate lists before any ladder hop")
    match.add_argument("--profile", type=Path, default=None, metavar="PATH",
                       help="record the run under the tracing layer and "
                            "write a schema-versioned JSON profile (spans, "
                            "events, metric counters) to PATH")
    match.add_argument("--index", choices=INDEX_KINDS, default=None,
                       help="run the sparse matching path on candidate "
                            "lists: 'exact' streams the true top-k, 'ivf' "
                            "probes an inverted-file index — no dense n x n "
                            "matrix for sparse-aware matchers")
    match.add_argument("--k", type=int, default=50,
                       help="candidates kept per source row (with --index)")
    match.add_argument("--nprobe", type=int, default=4,
                       help="inverted lists scanned per query (--index ivf)")
    match.add_argument("--clusters", type=int, default=16,
                       help="coarse-quantizer clusters (--index ivf)")

    index = subparsers.add_parser(
        "index", help="build and inspect ANN candidate indexes"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser(
        "build", help="train an IVF index on a preset's target embeddings"
    )
    build.add_argument("preset")
    build.add_argument("--regime", default="R",
                       help="embedding regime (R/G/N/NR/gcn/rrea)")
    build.add_argument("--output", "-o", type=Path, required=True)
    build.add_argument("--scale", type=float, default=1.0)
    build.add_argument("--clusters", type=int, default=16)
    build.add_argument("--metric", default="cosine")
    stats = index_sub.add_parser(
        "stats", help="print a saved index's structure statistics"
    )
    stats.add_argument("path", type=Path)

    profile = subparsers.add_parser(
        "profile", help="inspect observability profiles"
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)
    summ = profile_sub.add_parser(
        "summarize", help="render a profile JSON as a flame-style text summary"
    )
    summ.add_argument("path", type=Path)
    return parser


def _emit_table(name: str, scale: float, output: Path | None) -> None:
    table = _TABLES[name](scale=scale)
    text = format_table(table.rows, title=table.title)
    print(text)
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"table{name}.txt").write_text(text + "\n", encoding="utf-8")


def _emit_figure(name: str, scale: float) -> None:
    figure = _FIGURES[name](scale=scale)
    print(figure.title)
    for series, points in figure.series.items():
        rendered = "  ".join(f"{x}:{y:.3f}" for x, y in points)
        print(f"  {series}: {rendered}")


def _run_match(
    preset: str,
    regime: str,
    matcher_name: str,
    scale: float,
    workers: int = 1,
    dtype: str = "float64",
    no_cache: bool = False,
    policy: SupervisorPolicy | None = None,
    profile_path: Path | None = None,
    index_config: IndexConfig | None = None,
) -> int:
    task = load_preset(preset, scale=scale)
    embeddings = build_embeddings(task, regime, preset_name=preset)
    queries = task.test_query_ids()
    candidates = task.candidate_target_ids()
    matcher = create_matcher(matcher_name)
    supervisor = RunSupervisor(policy or SupervisorPolicy())
    with SimilarityEngine(workers=workers, dtype=dtype, cache=not no_cache) as engine:
        matcher.engine = engine
        recorder = registry = None
        with ExitStack() as stack:
            if profile_path is not None:
                recorder = stack.enter_context(obs_trace.recording())
                registry = stack.enter_context(obs_metrics.scoped())
            fit = getattr(matcher, "fit", None)
            if fit is not None and len(task.seed_index_pairs()):
                fit(embeddings.source, embeddings.target, task.seed_index_pairs())
            candidate_set = None
            if index_config is not None:
                candidate_set = build_candidates(
                    embeddings.source[queries],
                    embeddings.target[candidates],
                    index_config,
                    engine=engine,
                    metric=getattr(matcher, "metric", "cosine"),
                )
            run = supervisor.run(
                matcher,
                embeddings.source[queries],
                embeddings.target[candidates],
                name=matcher_name,
                context={"preset": preset, "regime": regime},
                candidates=candidate_set,
            )
        if not run.ok:
            # on_error="skip" (raise propagates before we get here).
            print(f"match failed: {run.describe()}", file=sys.stderr)
            return 1
        result = run.result
        metrics = evaluate_pairs(
            result.pairs, _gold_local_pairs(task, queries, candidates)
        )
        executed = run.executed
        print(f"{matcher_name} on {preset} ({regime} regime)")
        if run.degraded:
            print(f"  DEGRADED: {run.describe()}")
        elif len(run.attempts) > 1:
            print(f"  retried: {len(run.attempts)} attempts")
        print(f"  precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
              f"F1={metrics.f1:.3f}" + (f" (by {executed})" if run.degraded else ""))
        print(f"  time={result.seconds:.3f}s peak={result.peak_bytes / 2**20:.1f}MiB")
        if candidate_set is not None:
            gold_pairs = _gold_local_pairs(task, queries, candidates)
            print(f"  index: kind={index_config.kind} k={index_config.k} "
                  f"nnz={candidate_set.nnz} "
                  f"recall={candidate_set.recall(gold_pairs):.3f}")
        print(f"  engine: workers={engine.workers} dtype={engine.dtype.name} "
              f"cache={engine.cache_info()}")
        if profile_path is not None:
            document = build_profile(
                recorder,
                registry,
                meta={
                    "preset": preset,
                    "regime": regime,
                    "matcher": matcher_name,
                    "executed": executed,
                    "scale": scale,
                    "workers": engine.workers,
                    "dtype": engine.dtype.name,
                },
            )
            written = write_profile(profile_path, document)
            print(f"  profile written to {written}")
    return 0


def _run_index_build(args: argparse.Namespace) -> int:
    """Train an IVF index on a preset's candidate-target embeddings."""
    task = load_preset(args.preset, scale=args.scale)
    embeddings = build_embeddings(task, args.regime, preset_name=args.preset)
    targets = embeddings.target[task.candidate_target_ids()]
    index = IVFIndex(
        n_clusters=min(args.clusters, targets.shape[0]), metric=args.metric
    )
    index.train(targets).add(targets)
    written = index.save(args.output)
    print(f"index written to {written}")
    _print_index_stats(index)
    return 0


def _run_index_stats(path: Path) -> int:
    try:
        index = IVFIndex.load(path)
    except (OSError, ValueError, KeyError) as err:
        print(f"cannot load index {path}: {err}", file=sys.stderr)
        return 1
    _print_index_stats(index)
    return 0


def _print_index_stats(index: IVFIndex) -> None:
    for key, value in index.stats().items():
        rendered = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}={rendered}")


def _match_index_config(args: argparse.Namespace) -> IndexConfig | None:
    """Candidate-generation config from the ``match`` subcommand's flags."""
    if args.index is None:
        return None
    return IndexConfig(
        kind=args.index, k=args.k, nprobe=args.nprobe, n_clusters=args.clusters
    )


def _match_policy(args: argparse.Namespace) -> SupervisorPolicy:
    """Supervisor policy from the ``match`` subcommand's flags."""
    budget = args.memory_budget
    return SupervisorPolicy(
        timeout=args.timeout,
        memory_budget=int(budget * 2**20) if budget is not None else None,
        retries=args.retries,
        on_error=args.on_error,
        sparse_k=args.sparse_k,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        names = list(_TABLES) if args.which == "all" else [args.which]
        for name in names:
            _emit_table(name, args.scale, args.output)
        return 0
    if args.command == "figures":
        names = list(_FIGURES) if args.which == "all" else [args.which]
        for name in names:
            _emit_figure(name, args.scale)
        return 0
    if args.command == "datasets":
        if args.dataset_command == "list":
            for preset in list_presets():
                print(preset)
            return 0
        task = load_preset(args.preset, scale=args.scale)
        directory = save_alignment_task(task, args.output)
        print(f"exported {args.preset} to {directory}")
        return 0
    if args.command == "report":
        path = generate_report(args.output, scale=args.scale, seed=args.seed)
        print(f"report written to {path}")
        return 0
    if args.command == "match":
        try:
            return _run_match(
                args.preset, args.regime, args.matcher, args.scale,
                workers=args.workers, dtype=args.dtype, no_cache=args.no_cache,
                policy=_match_policy(args), profile_path=args.profile,
                index_config=_match_index_config(args),
            )
        except MatcherError as err:
            # --on-error raise tripped: one-line summary, non-zero exit.
            print(
                f"match failed: {type(err).__name__}: {err}", file=sys.stderr
            )
            return 1
    if args.command == "index":
        if args.index_command == "build":
            return _run_index_build(args)
        return _run_index_stats(args.path)
    if args.command == "profile":
        try:
            print(summarize(load_profile(args.path)))
        except (OSError, ValueError) as err:
            print(f"cannot summarize {args.path}: {err}", file=sys.stderr)
            return 1
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
