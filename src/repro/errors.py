"""Structured error taxonomy for the matching runtime.

Large benchmark campaigns (the paper's Tables 5-8 sweep seven matchers
across dataset families and regimes) live or die by run-management
hygiene: one diverging Sinkhorn run or an O(n^3) Hungarian blow-up must
not abort hours of accumulated results.  The exceptions here give every
failure mode a *type* the :class:`~repro.runtime.supervisor.RunSupervisor`
can dispatch on — retry, degrade, or record — and carry the matcher name
plus run context so a failure ledger entry is debuggable on its own.

Design notes:

* :class:`DataIntegrityError` is also a :class:`ValueError` so existing
  boundary-validation callers (``pytest.raises(ValueError)``) keep
  working; the richer type is additive.
* ``retryable`` is a class-level property of the failure mode, not of
  the particular instance: a :class:`ConvergenceError` can be retried
  under different numerics (e.g. Sinkhorn at a higher temperature), a
  deadline or budget breach cannot — repeating the same work yields the
  same breach, so those degrade instead.
"""

from __future__ import annotations

from typing import Any, Mapping


class MatcherError(Exception):
    """Base class for failures of one supervised matcher run.

    ``matcher`` names the algorithm that failed ("Hun.", "Sink.", ...);
    ``context`` carries whatever run coordinates the caller had (preset,
    regime, attempt number) for the failure ledger.  Both may be filled
    in after the fact via :meth:`annotate` — kernels deep in the stack
    rarely know which sweep cell they are serving.
    """

    #: Whether the supervisor may retry this failure mode.
    retryable: bool = False

    def __init__(
        self,
        message: str,
        *,
        matcher: str | None = None,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.matcher = matcher
        self.context: dict[str, Any] = dict(context or {})

    def annotate(
        self, matcher: str | None = None, **context: Any
    ) -> "MatcherError":
        """Attach matcher name / run coordinates in place; returns self."""
        if matcher is not None and self.matcher is None:
            self.matcher = matcher
        for key, value in context.items():
            self.context.setdefault(key, value)
        return self

    def __str__(self) -> str:  # noqa: D105 - ledger-friendly rendering
        base = super().__str__()
        if self.matcher is not None:
            return f"[{self.matcher}] {base}"
        return base


class ConvergenceError(MatcherError):
    """An iterative kernel produced non-finite values or failed to settle.

    Carries the ``temperature`` and ``iteration`` at which the iteration
    broke down (Sinkhorn overflow at small temperature is the canonical
    case).  Retryable: the supervisor re-runs under softened numerics —
    for matchers exposing a ``temperature`` attribute it multiplies the
    temperature by the policy's ``temperature_factor`` per attempt.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        *,
        temperature: float | None = None,
        iteration: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.temperature = temperature
        self.iteration = iteration


class ResourceBudgetExceeded(MatcherError):
    """The run's declared working set exceeded the memory budget.

    Raised post-hoc from the analytical :class:`~repro.utils.memory.
    MemoryTracker` accounting (deterministic, unlike RSS) or when a
    simulated/real allocation failure surfaces as ``MemoryError``.
    """

    def __init__(
        self,
        message: str,
        *,
        peak_bytes: int | None = None,
        budget_bytes: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.peak_bytes = peak_bytes
        self.budget_bytes = budget_bytes


class DeadlineExceeded(MatcherError):
    """The run overran its wall-clock deadline and was abandoned."""

    def __init__(
        self,
        message: str,
        *,
        elapsed_seconds: float | None = None,
        deadline_seconds: float | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.elapsed_seconds = elapsed_seconds
        self.deadline_seconds = deadline_seconds


class WorkerCrashedError(MatcherError):
    """A shard worker process died mid-computation (SIGKILL, OOM kill...).

    Raised by the shared-memory process backend when the pool reports a
    dead worker (nonzero exit code or a broken pipe) instead of letting
    the parent hang on results that will never arrive.  Not retryable as
    such — repeating the identical process-backed work risks the same
    kill — but the supervisor's process -> thread rung reruns the *same*
    matcher on the thread backend (bitwise-identical numbers, no child
    processes to lose), recorded as ``"<name>+thread"`` in the chain.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str = "process",
        exitcodes: tuple[int, ...] = (),
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.backend = backend
        self.exitcodes = tuple(exitcodes)


class DataIntegrityError(MatcherError, ValueError):
    """Input data failed an integrity check (NaNs, Infs, bad shapes).

    Doubles as a :class:`ValueError` so the library's boundary
    validators stay backward compatible.  ``bad_count`` and
    ``first_bad`` locate the corruption — the primary breadcrumb once
    fault injection starts producing NaNs on purpose.
    """

    def __init__(
        self,
        message: str,
        *,
        bad_count: int | None = None,
        first_bad: tuple[int, int] | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.bad_count = bad_count
        self.first_bad = first_bad


def as_matcher_error(
    error: BaseException, matcher: str | None = None, **context: Any
) -> MatcherError:
    """Coerce an arbitrary exception into the taxonomy.

    Already-typed errors are annotated and returned as-is; a
    ``MemoryError`` becomes :class:`ResourceBudgetExceeded` (allocation
    failures are budget breaches as far as the supervisor is concerned);
    everything else is wrapped in a plain :class:`MatcherError` with the
    original as ``__cause__``.
    """
    if isinstance(error, MatcherError):
        return error.annotate(matcher, **context)
    if isinstance(error, MemoryError):
        wrapped: MatcherError = ResourceBudgetExceeded(
            f"allocation failed: {error}", matcher=matcher, context=context
        )
    else:
        wrapped = MatcherError(
            f"{type(error).__name__}: {error}", matcher=matcher, context=context
        )
    wrapped.__cause__ = error
    return wrapped
