"""Supervised execution of matcher runs (deadline / budget / retry / degrade).

The :class:`RunSupervisor` wraps ``matcher.match()`` so a benchmark
sweep or a serving request treats every matcher as a *bounded* unit of
work:

* **Deadline** — with ``policy.timeout`` set, the run executes on a
  watchdog-supervised worker thread; if it overruns, the supervisor
  abandons it (daemon thread) and raises :class:`~repro.errors.
  DeadlineExceeded`.  Without a timeout the call is made inline — zero
  overhead on the clean path.
* **Memory budget** — checked post-run against the matcher's *declared*
  peak working set (:class:`~repro.utils.memory.MemoryTracker`), which
  is analytic and therefore deterministic; a real or simulated
  ``MemoryError`` maps to the same
  :class:`~repro.errors.ResourceBudgetExceeded`.
* **Bounded retry** — failure modes flagged ``retryable`` (e.g.
  :class:`~repro.errors.ConvergenceError` from Sinkhorn overflow at
  small temperature) are retried up to ``policy.retries`` times with a
  deterministic, seeded backoff schedule; matchers exposing a
  ``temperature`` attribute are softened by ``temperature_factor`` per
  attempt (the higher-temperature retry suggested by the note in
  :mod:`repro.core.sinkhorn`).
* **Degradation ladder** — on a deadline or budget breach with
  ``on_error="fallback"``, optimal matchers fall back to cheaper ones
  (``Hun.`` -> ``Greedy``, ``Sink.`` -> ``CSLS``); the fallback chain is
  recorded on the :class:`SupervisedRun`, never applied silently.
* **Dense -> sharded rung** — with ``policy.sharded_k`` set, a *memory*
  breach by a sparse-capable matcher first retries the same algorithm on
  coarse-to-fine *blocked* candidate lists
  (:func:`~repro.index.blocked.blocked_candidates`): the IVF quantizer
  routes the problem into memory-budgeted row batches, so the rung works
  even when the exact top-k scan itself is what breached.  Recorded as
  ``"<name>+sharded"``.
* **Dense -> sparse rung** — with ``policy.sparse_k`` set, a *memory*
  breach by a sparse-capable matcher (``Matcher.supports_sparse``)
  retries the *same algorithm* on exact top-``sparse_k`` candidate
  lists — O(n k) working set instead of n x n — before any ladder hop
  swaps the algorithm.  The chain records the rung as ``"<name>+sparse"``.
* **Process -> thread rung** — a :class:`~repro.errors.WorkerCrashedError`
  from the engine's process backend flips the engine to threads
  (:meth:`~repro.similarity.engine.SimilarityEngine.degrade_to_threads`:
  bitwise-identical scores, no child processes to lose) and reruns the
  *same* matcher, recorded as ``"<name>+thread"``.  It fires under any
  ``on_error`` mode — the numbers cannot change.

While an attempt runs, the policy's memory budget is published as the
ambient budget (:mod:`repro.runtime.budget`), so deep allocation sites
(``CandidateSet.densify``) can refuse to materialise n x n *before* the
allocation instead of the process eating a raw ``MemoryError``.

The supervisor never imports the fault-injection harness; chaos testing
plugs in from the outside via the runner's ``matcher_factory`` hook.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.index.candidates import CandidateSet

from repro.core.base import Matcher, MatchResult
from repro.core.registry import create_matcher
from repro.errors import (
    DeadlineExceeded,
    MatcherError,
    ResourceBudgetExceeded,
    WorkerCrashedError,
    as_matcher_error,
)
from repro.obs import events as obs_events
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.runtime.budget import budget_scope
from repro.utils.rng import ensure_rng

_ON_ERROR = ("raise", "skip", "fallback")


def _signal(name: str, **attrs: Any) -> None:
    """One supervisor signal, delivered to both observability planes:
    the trace recorder (for the post-hoc profile document) and the live
    event stream (for whoever is watching the sweep right now)."""
    obs_trace.event(name, **attrs)
    obs_events.emit(name, **attrs)


#: Default degradation ladder: each entry maps a matcher to the cheaper
#: one that replaces it after a deadline/budget breach.  The ladder
#: follows the paper's cost ordering (Figure 5): optimal assignment and
#: iterative transforms degrade to local scaling, local scaling degrades
#: to plain greedy, and greedy is terminal — there is nothing cheaper
#: than one argmax per row.
DEGRADATION_LADDER: Mapping[str, str] = MappingProxyType(
    {
        "Hun.": "Greedy",
        "SMat": "Greedy",
        "Sink.": "CSLS",
        "RInf": "CSLS",
        "RInf-wr": "CSLS",
        "RInf-pb": "CSLS",
        "RL": "Greedy",
        "Multi": "Greedy",
        "CSLS": "Greedy",
    }
)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Bounds and failure handling for supervised matcher runs."""

    #: Wall-clock deadline per attempt in seconds (None = unbounded).
    timeout: float | None = None
    #: Peak declared working-set budget in bytes (None = unbounded).
    memory_budget: int | None = None
    #: Extra attempts after the first for retryable failures.
    retries: int = 0
    #: First backoff delay in seconds; attempt ``i`` waits
    #: ``backoff_base * backoff_factor**i`` (plus seeded jitter).
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: Jitter fraction drawn from the seeded stream (0 = none).
    backoff_jitter: float = 0.25
    #: Multiplier applied to a retried matcher's ``temperature``.
    temperature_factor: float = 10.0
    #: Terminal-failure handling: "raise" propagates, "skip" records the
    #: failure and returns no result, "fallback" walks the ladder on
    #: deadline/budget breaches (and skips on other failure modes).
    on_error: str = "raise"
    #: Candidate-list width for the dense -> sparse degradation rung.
    #: When set (and ``on_error="fallback"``), a memory-budget breach by
    #: a sparse-capable matcher retries the same matcher on its top-k
    #: candidate lists before any ladder hop; None disables the rung.
    sparse_k: int | None = None
    #: Candidate-list width for the dense -> *sharded* rung, tried before
    #: the sparse rung: candidates come from IVF-blocked, memory-budgeted
    #: batches (:func:`~repro.index.blocked.blocked_candidates`) instead
    #: of an exact top-k scan, so the rung survives problems where even
    #: the scan's working set breaches.  None disables the rung.
    sharded_k: int | None = None
    #: Seed of the backoff-jitter stream (same seed -> same schedule).
    seed: int = 0
    #: Matcher name -> cheaper replacement (see :data:`DEGRADATION_LADDER`).
    fallbacks: Mapping[str, str] = field(default_factory=lambda: DEGRADATION_LADDER)

    def __post_init__(self) -> None:
        if self.on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {self.on_error!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_jitter < 0:
            raise ValueError(
                "backoff_base/backoff_jitter must be >= 0 and backoff_factor >= 1"
            )
        if self.sparse_k is not None and self.sparse_k < 1:
            raise ValueError(f"sparse_k must be >= 1, got {self.sparse_k}")
        if self.sharded_k is not None and self.sharded_k < 1:
            raise ValueError(f"sharded_k must be >= 1, got {self.sharded_k}")


def backoff_schedule(policy: SupervisorPolicy) -> list[float]:
    """Deterministic backoff delays for ``policy`` (one per retry).

    ``delay[i] = backoff_base * backoff_factor**i * (1 + jitter * u_i)``
    with ``u_i`` drawn from the policy-seeded stream — so two supervisors
    built from equal policies schedule byte-identical waits, the property
    the retry-determinism contract test pins down.
    """
    rng = ensure_rng(policy.seed)
    jitters = rng.random(policy.retries) if policy.retries else np.empty(0)
    return [
        policy.backoff_base
        * policy.backoff_factor**i
        * (1.0 + policy.backoff_jitter * float(jitters[i]))
        for i in range(policy.retries)
    ]


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one matcher inside a supervised run."""

    matcher: str
    #: 1-based attempt index *for that matcher* (resets on fallback).
    attempt: int
    #: The failure, or None if the attempt succeeded.
    error: MatcherError | None
    #: Backoff scheduled after this attempt (0.0 for terminal attempts).
    backoff: float
    #: Wall-clock seconds the attempt took (informational).
    seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SupervisedRun:
    """Outcome of one supervised matcher run (success, degraded, or failed)."""

    #: The matcher originally requested.
    requested: str
    #: The matcher that actually produced ``result`` (None if none did).
    executed: str | None = None
    result: MatchResult | None = None
    #: Every attempt across the fallback chain, in execution order.
    attempts: list[AttemptRecord] = field(default_factory=list)
    #: Matchers tried, in order (``["Hun.", "Greedy"]`` after one hop).
    chain: list[str] = field(default_factory=list)
    #: Terminal error when ``result`` is None, else the error that
    #: triggered the (successful) degradation, else None.
    error: MatcherError | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def degraded(self) -> bool:
        """Whether the result came from a ladder fallback."""
        return self.ok and self.executed != self.requested

    @property
    def fallback_from(self) -> str | None:
        """The requested matcher when the result is a fallback's."""
        return self.requested if self.degraded else None

    def describe(self) -> str:
        """One-line human summary for logs and CLI output."""
        if not self.ok:
            error = self.error
            kind = type(error).__name__ if error else "unknown"
            return f"{self.requested}: FAILED ({kind}: {error})"
        if self.degraded:
            return (
                f"{self.requested}: degraded to {self.executed} "
                f"after {type(self.error).__name__}"
            )
        tries = len(self.attempts)
        return f"{self.requested}: ok" + (f" after {tries} attempts" if tries > 1 else "")


class RunSupervisor:
    """Runs matchers under a :class:`SupervisorPolicy`.

    ``matcher_factory`` builds fallback matchers (defaults to the
    registry's :func:`~repro.core.registry.create_matcher`); ``sleep``
    is injectable so tests can assert the backoff schedule without
    actually waiting.

    Every attempt, retry, degradation hop, and terminal failure is also
    emitted through the observability layer: ``supervisor.*`` counters
    on ``metrics`` (the active :func:`~repro.obs.metrics.get_metrics`
    registry unless one is injected) and point events on the installed
    trace recorder — so a profile document carries the same story as
    the runner's :class:`~repro.experiments.runner.FailedRun` ledger.
    """

    def __init__(
        self,
        policy: SupervisorPolicy | None = None,
        *,
        matcher_factory: Callable[..., Matcher] | None = None,
        sleep: Callable[[float], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self._factory = matcher_factory or create_matcher
        self._sleep = sleep if sleep is not None else time.sleep
        self._schedule = backoff_schedule(self.policy)
        self._metrics = metrics

    def _registry(self) -> MetricsRegistry:
        """The injected metrics registry, or the active process one."""
        return self._metrics if self._metrics is not None else get_metrics()

    # -- public API ----------------------------------------------------

    def run(
        self,
        matcher: Matcher,
        source: np.ndarray,
        target: np.ndarray,
        *,
        name: str | None = None,
        context: Mapping[str, Any] | None = None,
        candidates: "CandidateSet | None" = None,
    ) -> SupervisedRun:
        """Execute ``matcher.match(source, target)`` under the policy.

        With ``candidates`` supplied the matcher runs its sparse path
        (:meth:`~repro.core.base.Matcher.match_candidates`) on those
        lists instead of matching the dense embeddings.

        Returns a :class:`SupervisedRun`; with ``on_error="raise"`` a
        terminal failure propagates as its typed
        :class:`~repro.errors.MatcherError` instead.
        """
        requested = name or matcher.name
        run = SupervisedRun(requested=requested)
        context = dict(context or {})
        current, current_name = matcher, requested
        registry = self._registry()
        # Which rung produced the candidate lists in play ("+sharded" /
        # "+sparse"); caller-supplied candidates count as the sparse path.
        rung_marker = "+sparse" if candidates is not None else ""
        while True:
            run.chain.append(current_name)
            error = self._attempt_with_retries(
                run, current, current_name, source, target, context, candidates
            )
            if error is None:
                registry.inc("supervisor.runs")
                if run.degraded:
                    # The ledger's resolution="fallback" entries: runs
                    # whose result came from a ladder substitute.
                    registry.inc("supervisor.degraded_runs")
                return run
            run.error = error
            if self._thread_rung(current, error):
                registry.inc("supervisor.thread_degradations")
                _signal(
                    "supervisor.degrade_thread",
                    matcher=current_name,
                    error=type(error).__name__,
                    exitcodes=list(getattr(error, "exitcodes", ())),
                )
                current_name = f"{current_name}+thread"
                continue
            sharded = self._sharded_rung(current, current_name, source, target, error, candidates)
            if sharded is not None:
                registry.inc("supervisor.sharded_degradations")
                _signal(
                    "supervisor.degrade_sharded",
                    matcher=current_name,
                    k=self.policy.sharded_k,
                    error=type(error).__name__,
                )
                candidates = sharded
                rung_marker = "+sharded"
                current_name = f"{current_name}+sharded"
                continue
            sparse = self._sparse_rung(current, current_name, source, target, error, candidates)
            if sparse is not None:
                registry.inc("supervisor.sparse_degradations")
                _signal(
                    "supervisor.degrade_sparse",
                    matcher=current_name,
                    k=self.policy.sparse_k,
                    error=type(error).__name__,
                )
                candidates = sparse
                rung_marker = "+sparse"
                current_name = f"{current_name}+sparse"
                continue
            fallback_name = self._fallback_for(current_name)
            if self.policy.on_error == "fallback" and fallback_name is not None and self._breached(error):
                fallback = self._build_fallback(fallback_name, current)
                if fallback is not None:
                    registry.inc("supervisor.degradations")
                    _signal(
                        "supervisor.degrade",
                        matcher=current_name,
                        fallback=fallback_name,
                        error=type(error).__name__,
                    )
                    if candidates is not None:
                        # The hop inherits the rung's candidate lists;
                        # keep the marker so the chain stays honest.
                        fallback_name = f"{fallback_name}{rung_marker}"
                    current, current_name = fallback, fallback_name
                    continue
            # The ledger's resolution="skipped" entries plus raised runs.
            registry.inc("supervisor.failed_runs")
            _signal(
                "supervisor.failure",
                matcher=requested,
                error=type(error).__name__,
            )
            if self.policy.on_error == "raise":
                raise error
            return run

    # -- internals -----------------------------------------------------

    def _thread_rung(self, matcher: Matcher, error: MatcherError) -> bool:
        """Process -> thread backend flip after a worker crash, or False.

        Unlike the ladder (which swaps the *algorithm*) this rung changes
        only the executor: the thread backend runs the identical shard
        grid with bitwise-identical scores, so it fires under *any*
        ``on_error`` mode — there is no result-quality decision for the
        caller to make.  It fires at most once per run: after the flip
        the engine's backend is no longer ``"process"``.
        """
        engine = getattr(matcher, "engine", None)
        if (
            not isinstance(error, WorkerCrashedError)
            or engine is None
            or getattr(engine, "backend", None) != "process"
        ):
            return False
        engine.degrade_to_threads()
        return True

    def _sharded_rung(
        self,
        matcher: Matcher,
        name: str,
        source: np.ndarray,
        target: np.ndarray,
        error: MatcherError,
        candidates: "CandidateSet | None",
    ) -> "CandidateSet | None":
        """Blocked candidate lists for the dense -> sharded rung, or None.

        Same trigger discipline as the sparse rung (memory breach, once,
        sparse-capable matcher), but the lists are built *out of core*:
        the IVF coarse quantizer routes the problem into row batches
        sized to the policy's memory budget, so the rung survives scales
        where even the exact top-k scan would breach.
        """
        if (
            self.policy.on_error != "fallback"
            or self.policy.sharded_k is None
            or candidates is not None
            or not isinstance(error, ResourceBudgetExceeded)
            or not matcher.supports_sparse
        ):
            return None
        try:
            from repro.index.blocked import blocked_candidates

            return blocked_candidates(
                source,
                target,
                self.policy.sharded_k,
                metric=getattr(matcher, "metric", "cosine"),
                memory_budget=self.policy.memory_budget,
            )
        except Exception:  # noqa: BLE001 - the original breach stays primary
            _signal("supervisor.sharded_rung_failed", matcher=name)
            return None

    def _sparse_rung(
        self,
        matcher: Matcher,
        name: str,
        source: np.ndarray,
        target: np.ndarray,
        error: MatcherError,
        candidates: "CandidateSet | None",
    ) -> "CandidateSet | None":
        """Candidate lists for the dense -> sparse rung, or None.

        The rung applies only to a *memory* breach (a deadline breach
        means the algorithm is too slow; shrinking its input is the
        ladder's job), only once (``candidates is None``), and only for
        matchers with a real sparse path.  A failure while building the
        lists disables the rung rather than masking the original error.
        """
        if (
            self.policy.on_error != "fallback"
            or self.policy.sparse_k is None
            or candidates is not None
            or not isinstance(error, ResourceBudgetExceeded)
            or not matcher.supports_sparse
        ):
            return None
        try:
            if matcher.engine is not None:
                return matcher.engine.top_k_candidates(
                    source,
                    target,
                    self.policy.sparse_k,
                    metric=getattr(matcher, "metric", "cosine"),
                )
            from repro.index.candidates import CandidateSet
            from repro.similarity.chunked import chunked_top_k

            indices, scores = chunked_top_k(
                source,
                target,
                self.policy.sparse_k,
                metric=getattr(matcher, "metric", "cosine"),
            )
            return CandidateSet.from_topk(indices, scores, n_targets=target.shape[0])
        except Exception:  # noqa: BLE001 - the original breach stays primary
            _signal("supervisor.sparse_rung_failed", matcher=name)
            return None

    def _attempt_with_retries(
        self,
        run: SupervisedRun,
        matcher: Matcher,
        name: str,
        source: np.ndarray,
        target: np.ndarray,
        context: Mapping[str, Any],
        candidates: "CandidateSet | None" = None,
    ) -> MatcherError | None:
        """All attempts of one matcher; returns its terminal error or None."""
        error: MatcherError | None = None
        registry = self._registry()
        if candidates is None:
            invoke = lambda: matcher.match(source, target)  # noqa: E731
        else:
            invoke = lambda: matcher.match_candidates(candidates)  # noqa: E731
        for attempt in range(1, self.policy.retries + 2):
            start = time.perf_counter()
            try:
                result = self._bounded_match(invoke, name, attempt, context)
            except MatcherError as exc:
                error = exc
                retrying = exc.retryable and attempt <= self.policy.retries
                backoff = self._schedule[attempt - 1] if retrying else 0.0
                registry.inc("supervisor.attempts")
                run.attempts.append(
                    AttemptRecord(
                        matcher=name,
                        attempt=attempt,
                        error=exc,
                        backoff=backoff,
                        seconds=time.perf_counter() - start,
                    )
                )
                if not retrying:
                    return error
                registry.inc("supervisor.retries")
                _signal(
                    "supervisor.retry",
                    matcher=name,
                    attempt=attempt,
                    error=type(exc).__name__,
                    backoff=backoff,
                )
                self._soften(matcher)
                if backoff > 0:
                    self._sleep(backoff)
                continue
            registry.inc("supervisor.attempts")
            run.attempts.append(
                AttemptRecord(
                    matcher=name,
                    attempt=attempt,
                    error=None,
                    backoff=0.0,
                    seconds=time.perf_counter() - start,
                )
            )
            run.executed = name
            run.result = result
            return None
        return error  # pragma: no cover - loop always returns

    def _bounded_match(
        self,
        invoke: Callable[[], MatchResult],
        name: str,
        attempt: int,
        context: Mapping[str, Any],
    ) -> MatchResult:
        """One attempt under deadline + budget; errors come back typed.

        The policy budget is published as the ambient budget for the
        attempt (:func:`~repro.runtime.budget.budget_scope`), so deep
        allocation sites can refuse a doomed n x n materialisation with
        a typed breach the ladder catches.
        """
        try:
            with budget_scope(self.policy.memory_budget):
                if self.policy.timeout is None:
                    result = invoke()
                else:
                    result = self._match_with_deadline(invoke, name)
        except BaseException as exc:  # noqa: BLE001 - typed and re-raised
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            raise as_matcher_error(exc, matcher=name, attempt=attempt, **context) from exc
        budget = self.policy.memory_budget
        if budget is not None and result.peak_bytes > budget:
            raise ResourceBudgetExceeded(
                f"declared peak {result.peak_bytes} B exceeds budget {budget} B",
                peak_bytes=result.peak_bytes,
                budget_bytes=budget,
                matcher=name,
                context={"attempt": attempt, **context},
            )
        return result

    def _match_with_deadline(
        self, invoke: Callable[[], MatchResult], name: str
    ) -> MatchResult:
        """Run on a watchdog-supervised worker thread; abandon on overrun.

        A stalled numpy kernel cannot be interrupted from Python, so the
        watchdog *abandons* the worker (daemon thread) rather than
        killing it; the sweep moves on while the stray attempt finishes
        or dies with the process.
        """
        outcome: dict[str, Any] = {}
        done = threading.Event()

        def worker() -> None:
            try:
                outcome["result"] = invoke()
            except BaseException as exc:  # noqa: BLE001 - ferried to caller
                outcome["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=worker, name=f"supervised-{name}", daemon=True
        )
        start = time.perf_counter()
        thread.start()
        if not done.wait(self.policy.timeout):
            raise DeadlineExceeded(
                f"run exceeded the {self.policy.timeout:g}s deadline and was abandoned",
                elapsed_seconds=time.perf_counter() - start,
                deadline_seconds=self.policy.timeout,
                matcher=name,
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]

    def _soften(self, matcher: Matcher) -> None:
        """Adjust the matcher before a retry (higher Sinkhorn temperature)."""
        temperature = getattr(matcher, "temperature", None)
        if isinstance(temperature, (int, float)):
            matcher.temperature = float(temperature) * self.policy.temperature_factor

    def _breached(self, error: MatcherError) -> bool:
        """Whether ``error`` is a deadline/budget breach (ladder trigger)."""
        return isinstance(error, (DeadlineExceeded, ResourceBudgetExceeded))

    def _fallback_for(self, name: str) -> str | None:
        # A "+sparse"/"+sharded"/"+thread" rung keeps its base matcher's
        # ladder entry, so a still-breaching rung run can degrade the
        # algorithm.
        return self.policy.fallbacks.get(
            name.removesuffix("+sparse")
            .removesuffix("+sharded")
            .removesuffix("+thread")
        )

    def _build_fallback(self, name: str, failed: Matcher) -> Matcher | None:
        """Instantiate the ladder replacement, inheriting metric + engine."""
        kwargs: dict[str, Any] = {}
        metric = getattr(failed, "metric", None)
        if isinstance(metric, str):
            kwargs["metric"] = metric
        try:
            fallback = self._factory(name, **kwargs)
        except TypeError:
            fallback = self._factory(name)
        except ValueError:
            return None
        fallback.engine = failed.engine
        return fallback
