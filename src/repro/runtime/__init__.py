"""Fault-tolerant matching runtime.

:mod:`repro.runtime.supervisor` turns every ``matcher.match()`` call
into a supervised, bounded unit of work — wall-clock deadline, memory
budget, bounded retry with deterministic backoff, and a degradation
ladder that swaps optimal matchers for cheaper ones instead of failing
the whole sweep.  The same supervisor later bounds per-request work in
the serving path.
"""

from repro.runtime.supervisor import (
    DEGRADATION_LADDER,
    AttemptRecord,
    RunSupervisor,
    SupervisedRun,
    SupervisorPolicy,
    backoff_schedule,
)

__all__ = [
    "AttemptRecord",
    "DEGRADATION_LADDER",
    "RunSupervisor",
    "SupervisedRun",
    "SupervisorPolicy",
    "backoff_schedule",
]
