"""Ambient memory budget shared between the supervisor and lower layers.

The supervisor knows the policy's memory budget; the code that actually
materialises dense matrices (``CandidateSet.densify``, matcher fallback
paths) lives several layers below and has no policy in scope.  Rather
than threading a budget argument through every matcher signature, the
supervisor publishes the active budget here for the duration of an
attempt, and the low layers consult it before allocating.

The stack is a plain module-level list, *not* a :mod:`contextvars`
variable: the supervisor's deadline path runs the matcher on a worker
thread, and context variables do not propagate to threads started inside
the scope.  A module-level stack is visible from any thread, which is
exactly the semantics a process-wide budget wants.  Nesting pushes; the
innermost (most recently entered) budget wins.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_BUDGETS: list[int] = []


def active_budget() -> int | None:
    """The innermost active memory budget in bytes, or ``None``."""
    return _BUDGETS[-1] if _BUDGETS else None


@contextmanager
def budget_scope(budget_bytes: int | None) -> Iterator[None]:
    """Publish ``budget_bytes`` as the active budget for this scope.

    ``None`` is a no-op scope, so callers can wrap unconditionally with
    whatever their policy holds.
    """
    if budget_bytes is None:
        yield
        return
    if budget_bytes < 1:
        raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
    _BUDGETS.append(int(budget_bytes))
    try:
        yield
    finally:
        _BUDGETS.pop()
