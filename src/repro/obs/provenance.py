"""Run provenance: who computed this, with what code, on what stack.

Benchmarking studies of entity alignment (OpenEA, the EntMatcher study
itself) are only reproducible when every number can be traced back to
the exact code revision and library stack that produced it.  This
module builds that stamp once per process and shares it between the two
durable artifact formats — ledger records (:mod:`repro.obs.ledger`) and
profile documents (:mod:`repro.obs.profile`) — so the provenance block
has one shape everywhere:

``{"python": ..., "numpy": ..., "scipy": ..., "platform": ...,
"git": {"sha": ..., "dirty": ...} | None}``

``git`` is ``None`` outside a git checkout (e.g. an installed wheel);
everything else is always present.  The git lookup shells out once and
is cached — appending a thousand ledger records costs one subprocess,
not a thousand.
"""

from __future__ import annotations

import platform
import subprocess
from pathlib import Path
from typing import Any

import numpy as np

try:  # pragma: no cover - scipy is a hard dependency, but stay graceful
    import scipy
    _SCIPY_VERSION: str | None = scipy.__version__
except ImportError:  # pragma: no cover
    _SCIPY_VERSION = None

#: Cached git stamp per resolved directory (one subprocess per process,
#: not one per record).
_GIT_CACHE: dict[str, dict[str, Any] | None] = {}


def git_revision(root: Path | str | None = None) -> dict[str, Any] | None:
    """``{"sha": ..., "dirty": ...}`` for the checkout at ``root``.

    ``root`` defaults to the working directory.  Returns ``None`` when
    git is missing, the directory is not a repository, or the lookup
    fails for any other reason — provenance never breaks a run.
    """
    key = str(Path(root) if root is not None else Path.cwd())
    if key not in _GIT_CACHE:
        _GIT_CACHE[key] = _query_git(key)
    return _GIT_CACHE[key]


def _query_git(root: str) -> dict[str, Any] | None:
    try:
        sha = subprocess.run(
            ["git", "-C", root, "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "-C", root, "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    if not sha:
        return None
    return {"sha": sha, "dirty": bool(status.strip())}


def clear_git_cache() -> None:
    """Forget cached git stamps (tests that fake repositories use this)."""
    _GIT_CACHE.clear()


def provenance(root: Path | str | None = None) -> dict[str, Any]:
    """The full provenance block shared by ledger records and profiles."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": _SCIPY_VERSION,
        "platform": platform.platform(),
        "git": git_revision(root),
    }
