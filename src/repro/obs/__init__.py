"""Observability: tracing spans, process metrics, and run profiles.

Zero-dependency instrumentation for the matching hot paths:

* :mod:`repro.obs.trace` — nestable spans collected into a per-run tree
  (wall/CPU time, peak-RSS delta, counters); disabled by default via a
  no-op recorder.
* :mod:`repro.obs.metrics` — process-wide named counters/gauges/timers
  (engine cache hits, Sinkhorn iterations, supervisor retries) plus
  streaming histograms.
* :mod:`repro.obs.histogram` — fixed log-bucketed, mergeable, thread-
  safe histograms with one-bucket-accurate quantile estimation.
* :mod:`repro.obs.exposition` — deterministic Prometheus text-format
  rendering of the registry (``GET /metrics``, ``repro obs scrape``).
* :mod:`repro.obs.slo` — rolling multi-window error-budget / burn-rate
  tracking (Google-SRE fast+slow windows) for the serving daemon.
* :mod:`repro.obs.profile` — schema-versioned JSON profile documents
  plus a flame-style text summary (``repro profile summarize``).
* :mod:`repro.obs.events` — live telemetry: progress/heartbeat events
  from runner/supervisor/engine through pluggable sinks (human-readable
  stderr, JSONL file, in-memory); disabled by default.
* :mod:`repro.obs.ledger` — append-only, schema-versioned JSONL run
  ledger: one provenance-stamped record per matcher run
  (``repro runs list/show/diff``).
* :mod:`repro.obs.drift` — accuracy drift gate comparing ledger records
  against committed reference bands (``repro runs drift``).
* :mod:`repro.obs.provenance` — the shared git/interpreter/library
  stamp carried by ledger records and profile documents.
"""

from repro.obs.drift import DriftReport, Violation, check_drift
from repro.obs.events import (
    Event,
    EventSink,
    HumanSink,
    JsonlSink,
    MemorySink,
    emit,
    emitting,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LEDGER_VERSION,
    RunLedger,
    build_record,
    config_fingerprint,
    validate_record,
)
from repro.obs.exposition import render as render_prometheus
from repro.obs.histogram import DEFAULT_LATENCY_BOUNDS, Histogram
from repro.obs.metrics import MetricsRegistry, get_metrics, scoped
from repro.obs.provenance import provenance
from repro.obs.slo import SLOTracker
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PROFILE_VERSION,
    build_profile,
    load_profile,
    summarize,
    validate_profile,
    write_profile,
)
from repro.obs.trace import (
    NullRecorder,
    Span,
    TraceRecorder,
    event,
    get_recorder,
    install,
    recording,
    span,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "DriftReport",
    "Violation",
    "check_drift",
    "Event",
    "EventSink",
    "HumanSink",
    "JsonlSink",
    "MemorySink",
    "emit",
    "emitting",
    "LEDGER_SCHEMA",
    "LEDGER_VERSION",
    "RunLedger",
    "build_record",
    "config_fingerprint",
    "validate_record",
    "provenance",
    "MetricsRegistry",
    "get_metrics",
    "scoped",
    "DEFAULT_LATENCY_BOUNDS",
    "Histogram",
    "render_prometheus",
    "SLOTracker",
    "PROFILE_SCHEMA",
    "PROFILE_VERSION",
    "build_profile",
    "load_profile",
    "summarize",
    "validate_profile",
    "write_profile",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "event",
    "get_recorder",
    "install",
    "recording",
    "span",
    "tracing_enabled",
    "uninstall",
]
