"""Observability: tracing spans, process metrics, and run profiles.

Zero-dependency instrumentation for the matching hot paths:

* :mod:`repro.obs.trace` — nestable spans collected into a per-run tree
  (wall/CPU time, peak-RSS delta, counters); disabled by default via a
  no-op recorder.
* :mod:`repro.obs.metrics` — process-wide named counters/gauges/timers
  (engine cache hits, Sinkhorn iterations, supervisor retries).
* :mod:`repro.obs.profile` — schema-versioned JSON profile documents
  plus a flame-style text summary (``repro profile summarize``).
"""

from repro.obs.metrics import MetricsRegistry, get_metrics, scoped
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PROFILE_VERSION,
    build_profile,
    load_profile,
    summarize,
    validate_profile,
    write_profile,
)
from repro.obs.trace import (
    NullRecorder,
    Span,
    TraceRecorder,
    event,
    get_recorder,
    install,
    recording,
    span,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "MetricsRegistry",
    "get_metrics",
    "scoped",
    "PROFILE_SCHEMA",
    "PROFILE_VERSION",
    "build_profile",
    "load_profile",
    "summarize",
    "validate_profile",
    "write_profile",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "event",
    "get_recorder",
    "install",
    "recording",
    "span",
    "tracing_enabled",
    "uninstall",
]
