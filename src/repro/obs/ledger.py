"""Append-only, schema-versioned JSONL run ledger.

The paper's campaign is comparative — seven matchers judged by who wins
and by how much — and comparisons are only trustworthy when every number
survives its process.  A :class:`RunLedger` is the durable record: one
JSON line per matcher run, carrying the experiment coordinates (preset,
regime, matcher, seed, scale, metric), a config fingerprint (the
ledger's analogue of the similarity engine's content-hash cache key),
full provenance (git SHA + dirty flag, python/numpy/scipy versions),
accuracy (precision/recall/F1 plus the space-level Hits@k/MRR
diagnostics), cost (wall/CPU seconds, peak declared bytes), the engine's
cache counters, and — for supervised runs — the retry/degradation chain
and typed error.  Failed runs are first-class records (status
``"failed"``/``"degraded"``), so ``repro runs list`` surfaces what broke
alongside what worked.

Appending is *opt-in* (``run_experiment(..., ledger=...)``,
``AlignmentPipeline(..., ledger=...)``, ``repro match --ledger PATH``)
and append-only: records are never rewritten, so a ledger file is a
time-ordered history that ``repro runs list/show/diff/drift`` and the
drift gate (:mod:`repro.obs.drift`) consume directly.

Schema policy mirrors the profile document's (DESIGN.md §7): ``version``
bumps only when a required key is removed or retyped; additive keys do
not bump it.  :func:`validate_record` is the structural contract every
reader and writer runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.obs.provenance import provenance
from repro.storage.durable import fsync_dir, fsync_file
from repro.utils.memory import peak_rss_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

#: Document identifier; readers reject anything else.
LEDGER_SCHEMA = "repro.run_ledger"
#: Bumped on breaking changes only (removed/retyped required keys).
#: v2 adds the required ``resources`` block (measured peak RSS plus the
#: engine's backend/worker/shard configuration).
LEDGER_VERSION = 2
#: Versions this build reads.  v1 records (no ``resources``) stay
#: readable — the same back-compat posture as the profiles v1 -> v2 bump.
_READABLE_VERSIONS = (1, LEDGER_VERSION)

#: Every record's required keys and their JSON types.
_RECORD_KEYS: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "version": int,
    "run_id": str,
    "created_at": str,
    "fingerprint": str,
    "preset": str,
    "regime": str,
    "task": str,
    "matcher": str,
    "seed": int,
    "scale": (int, float),
    "metric": str,
    "status": str,
    "metrics": (dict, type(None)),
    "ranking": dict,
    "top5_std": (int, float),
    "seconds": (int, float),
    "cpu_seconds": (int, float, type(None)),
    "peak_bytes": int,
    "attempts": int,
    "fallback": (str, type(None)),
    "chain": list,
    "error": (dict, type(None)),
    "engine": (dict, type(None)),
    "profile_path": (str, type(None)),
    "provenance": dict,
    "resources": dict,
}

#: Keys required only from the version that introduced them, so older
#: records keep validating (the back-compat half of the v1 -> v2 bump).
_KEYS_SINCE_VERSION: dict[str, int] = {"resources": 2}

#: A run either completed cleanly, completed via a degradation-ladder
#: fallback (result + recorded breach), or produced nothing.
RECORD_STATUSES = ("ok", "degraded", "failed")


def config_fingerprint(config: "ExperimentConfig") -> str:
    """Content digest of an experiment configuration.

    Same construction as the engine's embedding fingerprint (blake2b over
    a canonical byte rendering), applied to the config's identity fields
    — two runs share a fingerprint iff they describe the same cell
    family, which is what ``repro runs diff`` keys on.
    """
    return fingerprint_payload(
        {
            "preset": config.preset,
            "input_regime": config.input_regime,
            "matchers": list(config.matchers),
            "matcher_options": {
                name: dict(options)
                for name, options in sorted(config.matcher_options.items())
            },
            "scale": config.scale,
            "seed": config.seed,
            "metric": config.metric,
        }
    )


def fingerprint_payload(payload: Mapping[str, Any]) -> str:
    """blake2b digest of a canonical JSON rendering of ``payload``.

    The generic form behind :func:`config_fingerprint`; the pipeline
    uses it directly (its identity is task + matcher + metric, not an
    :class:`ExperimentConfig`).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(json.dumps(payload, sort_keys=True, default=repr).encode())
    return digest.hexdigest()


def new_run_id() -> str:
    """Unique id for one appended record."""
    return uuid.uuid4().hex


def default_resources() -> dict[str, Any]:
    """The v2 ``resources`` block with serial defaults and measured RSS.

    ``peak_rss_bytes`` comes from :func:`repro.utils.memory.
    peak_rss_bytes` — the same module the supervisor's analytic budgets
    live in, so the ledger's measured number and the budget's declared
    number share one home and one unit.  Callers with an engine merge
    its ``resource_info()`` over these defaults.
    """
    return {
        "backend": "thread",
        "workers": 1,
        "shards": 0,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def utc_now() -> str:
    """ISO-8601 UTC timestamp for ``created_at``."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def build_record(
    *,
    fingerprint: str,
    preset: str,
    regime: str,
    task: str,
    matcher: str,
    seed: int,
    scale: float,
    metric: str,
    status: str,
    metrics: Mapping[str, float] | None,
    ranking: Mapping[str, float] | None = None,
    top5_std: float = 0.0,
    seconds: float = 0.0,
    cpu_seconds: float | None = None,
    peak_bytes: int = 0,
    attempts: int = 1,
    fallback: str | None = None,
    chain: list[str] | None = None,
    error: Mapping[str, str] | None = None,
    engine: Mapping[str, Any] | None = None,
    profile_path: str | None = None,
    resources: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble (and validate) one ledger record.

    ``metrics`` is ``None`` exactly when the run produced nothing
    (status ``"failed"``); ``error`` is ``{"type": ..., "message": ...}``
    for failed and degraded runs.  ``resources`` (engine backend/worker/
    shard configuration) is merged over :func:`default_resources`, so
    the measured peak RSS is always present.
    """
    record = {
        "schema": LEDGER_SCHEMA,
        "version": LEDGER_VERSION,
        "run_id": new_run_id(),
        "created_at": utc_now(),
        "fingerprint": fingerprint,
        "preset": preset,
        "regime": regime,
        "task": task,
        "matcher": matcher,
        "seed": int(seed),
        "scale": float(scale),
        "metric": metric,
        "status": status,
        "metrics": dict(metrics) if metrics is not None else None,
        "ranking": dict(ranking or {}),
        "top5_std": float(top5_std),
        "seconds": float(seconds),
        "cpu_seconds": float(cpu_seconds) if cpu_seconds is not None else None,
        "peak_bytes": int(peak_bytes),
        "attempts": int(attempts),
        "fallback": fallback,
        "chain": list(chain or []),
        "error": dict(error) if error is not None else None,
        "engine": dict(engine) if engine is not None else None,
        "profile_path": profile_path,
        "provenance": provenance(),
        "resources": {**default_resources(), **dict(resources or {})},
    }
    return validate_record(record)


def validate_record(record: Any) -> dict[str, Any]:
    """Check ``record`` against the ledger schema; return it.

    Raises ``ValueError`` naming the first structural violation — run by
    both the writer (:meth:`RunLedger.append`) and every reader, so a
    corrupt line can never silently enter a comparison.
    """
    if not isinstance(record, dict):
        raise ValueError(f"ledger record must be a JSON object, got {type(record).__name__}")
    if record.get("schema") != LEDGER_SCHEMA:
        raise ValueError(
            f"unknown ledger schema {record.get('schema')!r}; expected {LEDGER_SCHEMA!r}"
        )
    if record.get("version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported ledger version {record.get('version')!r}; "
            f"this library reads versions {_READABLE_VERSIONS}"
        )
    version = record["version"]
    for key, kind in _RECORD_KEYS.items():
        if version < _KEYS_SINCE_VERSION.get(key, 0):
            continue  # key postdates this record's schema version
        if key not in record:
            raise ValueError(f"ledger record is missing required key {key!r}")
        if not isinstance(record[key], kind):
            raise ValueError(
                f"ledger record {key!r}: expected {kind}, got {type(record[key]).__name__}"
            )
    if record["status"] not in RECORD_STATUSES:
        raise ValueError(
            f"ledger record status must be one of {RECORD_STATUSES}, "
            f"got {record['status']!r}"
        )
    if record["status"] == "failed" and record["metrics"] is not None:
        raise ValueError("a failed record carries no metrics (got some)")
    if record["status"] != "failed" and record["metrics"] is None:
        raise ValueError(f"a {record['status']!r} record must carry metrics")
    if record["status"] != "ok" and record["error"] is None:
        raise ValueError(f"a {record['status']!r} record must carry its error")
    if record["error"] is not None and not isinstance(record["error"].get("type"), str):
        raise ValueError("ledger record error must carry a string 'type'")
    return record


def cell_key(record: Mapping[str, Any]) -> tuple[str, str, str]:
    """The (preset, regime, matcher) cell a record belongs to."""
    return (record["preset"], record["regime"], record["matcher"])


#: Characters a torn or padded tail may be made of without being JSON.
_PADDING_BYTES = b" \t\r\x00"


@dataclass(frozen=True)
class TornTail:
    """A corrupt *final* line: everything before it parsed cleanly.

    ``byte_offset`` is where the torn tail starts — truncating the file
    there (what ``fsck --repair`` does, after copying the tail to a
    ``.bak`` sidecar) restores a fully valid ledger.
    """

    lineno: int
    byte_offset: int
    nbytes: int
    reason: str


@dataclass(frozen=True)
class LedgerScan:
    """Result of one tolerant pass over a ledger file."""

    records: list[dict[str, Any]]
    torn: TornTail | None


@dataclass(frozen=True)
class FsckReport:
    """Outcome of :meth:`RunLedger.fsck`.

    ``error`` is set for mid-file corruption (unrepairable without
    losing good records — fsck refuses); ``torn`` describes a
    recoverable tail; ``repaired``/``backup`` record what ``repair=True``
    did.
    """

    path: Path
    n_records: int
    torn: TornTail | None = None
    repaired: bool = False
    backup: Path | None = None
    error: str | None = None

    @property
    def clean(self) -> bool:
        return self.error is None and (self.torn is None or self.repaired)


class RunLedger:
    """One append-only JSONL ledger file with WAL-style durability.

    Construction never touches the filesystem; the file is created on
    first :meth:`append`.  ``durable=True`` (per-ledger default, or
    per-append override) fsyncs every append, so an acknowledged record
    survives a crash — the torn-write window shrinks to the one line in
    flight, which :meth:`records` in tolerant mode and :meth:`fsck`
    recover from.  Reading validates every line; a corrupt line in the
    *middle* of the file (records after it parsed fine, so this was
    never an interrupted append) always raises with ``path:lineno``.
    """

    def __init__(self, path: Path | str, durable: bool = False) -> None:
        self.path = Path(path)
        self.durable = durable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({str(self.path)!r})"

    def append(
        self, record: Mapping[str, Any], durable: bool | None = None
    ) -> dict[str, Any]:
        """Validate ``record`` and append it as one JSON line.

        With ``durable`` (argument, falling back to the ledger's
        default) the line is fsynced before returning — and on first
        creation the parent directory too, so the file's existence
        itself survives a power cut.

        A tail without its trailing newline — exactly what a crash
        mid-append leaves — is healed first, never appended onto: a
        complete final record gets its newline back, a torn fragment is
        moved to a ``.bak`` sidecar (the fsck repair), and mid-file
        corruption raises rather than burying the damage deeper.
        """
        durable = self.durable if durable is None else durable
        record = validate_record(dict(record))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        if not created:
            self._heal_tail(durable)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=False) + "\n")
            if durable:
                fsync_file(handle)
        if durable and created:
            fsync_dir(self.path.parent)
        return record

    def _heal_tail(self, durable: bool) -> None:
        """Make the file end in a newline before an append lands.

        Appending onto a newline-less tail would concatenate the new
        record into the old bytes — silently losing it, and turning the
        merged line into mid-file corruption once a further record
        follows.  Three cases: a complete final record that merely lost
        its newline is finished with one; a torn fragment goes through
        the same repair as ``fsck --repair`` (tail to a ``.bak``
        sidecar, file truncated at the tear); mid-file corruption
        propagates from :meth:`scan` untouched.
        """
        with self.path.open("rb") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
        scan = self.scan()
        if scan.torn is not None:
            self._repair_torn_tail(scan.torn)
            return
        with self.path.open("r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n")
            if durable:
                os.fsync(handle.fileno())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records())

    def scan(self) -> LedgerScan:
        """Tolerant pass: every complete record, plus the torn tail if any.

        Only the *final* line may be bad (an interrupted append tears at
        most the last line); a bad line with valid records after it is
        mid-file corruption and raises ``ValueError`` with
        ``path:lineno`` — no tolerance mode hides it.  A final segment
        without its trailing newline that still parses and validates is
        accepted as complete.
        """
        if not self.path.exists():
            return LedgerScan([], None)
        raw = self.path.read_bytes()
        records: list[dict[str, Any]] = []
        # Candidate torn tail: (lineno, offset, nbytes, reason).  Promoted
        # to mid-file corruption if any content line follows it.
        candidate: tuple[int, int, int, str] | None = None
        # Padding-only lines are skipped mid-file (legacy blank-line
        # tolerance) but a padded *tail* is reported as torn.
        padding: tuple[int, int, int] | None = None
        lineno = 0
        pos = 0
        total = len(raw)
        while pos < total:
            end = raw.find(b"\n", pos)
            nxt = total if end == -1 else end + 1
            line = raw[pos : total if end == -1 else end]
            lineno += 1
            if line.strip(_PADDING_BYTES) == b"":
                # Bare blank separators (legacy tolerance) pass silently;
                # whitespace/NUL padding is remembered in case it is the
                # tail a torn write left behind.
                if line != b"":
                    padding = (lineno, pos, nxt - pos)
                pos = nxt
                continue
            if candidate is not None:
                bad_lineno, _, _, reason = candidate
                raise ValueError(
                    f"{self.path}:{bad_lineno}: {reason} (followed by further "
                    f"content — mid-file corruption, not a torn tail)"
                )
            padding = None
            try:
                records.append(validate_record(json.loads(line.decode("utf-8"))))
            except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as err:
                candidate = (lineno, pos, nxt - pos, str(err))
            pos = nxt
        torn: TornTail | None = None
        if candidate is not None:
            bad_lineno, offset, nbytes, reason = candidate
            torn = TornTail(bad_lineno, offset, nbytes, f"torn final line: {reason}")
        elif padding is not None:
            pad_lineno, offset, nbytes = padding
            torn = TornTail(
                pad_lineno, offset, nbytes, "blank-padded final line (torn write)"
            )
        return LedgerScan(records, torn)

    def records(self, strict: bool = True) -> list[dict[str, Any]]:
        """Every complete record in append order (validated).

        ``strict=True`` (default) raises on a torn tail, reporting the
        line, how many complete records are recoverable, and the repair
        command; ``strict=False`` returns the complete records and
        leaves the torn tail for :meth:`fsck`.  Mid-file corruption
        raises in both modes.
        """
        scan = self.scan()
        if strict and scan.torn is not None:
            raise ValueError(
                f"{self.path}:{scan.torn.lineno}: {scan.torn.reason}; "
                f"{len(scan.records)} complete record"
                f"{'s' if len(scan.records) != 1 else ''} recoverable; "
                f"run 'repro runs fsck --repair' to truncate the torn tail"
            )
        return scan.records

    def latest_cells(
        self, strict: bool = True
    ) -> dict[tuple[str, str, str], dict[str, Any]]:
        """Most recent record per (preset, regime, matcher) cell.

        Append order is time order, so "latest" is simply the last line
        for the cell — the view the drift gate compares against the
        reference bands.  ``strict=False`` tolerates a torn tail (the
        resume path reads crashed ledgers through this).
        """
        latest: dict[tuple[str, str, str], dict[str, Any]] = {}
        for record in self.records(strict=strict):
            latest[cell_key(record)] = record
        return latest

    def fsck(self, repair: bool = False) -> FsckReport:
        """Check (and optionally repair) the ledger file.

        A clean or missing file reports ``n_records`` and nothing else.
        A torn tail is reported; with ``repair=True`` the tail bytes are
        copied to a ``<ledger>.bak`` sidecar (``.bak.1``, ``.bak.2``,
        ... when earlier repairs already claimed the name — a repair
        never discards what a previous one preserved), the file is
        truncated at the tear, and both file and directory are fsynced.
        Mid-file corruption is *never* repaired (truncating there would
        discard good records); it comes back as ``error``.
        """
        try:
            scan = self.scan()
        except ValueError as err:
            return FsckReport(self.path, 0, error=str(err))
        if scan.torn is None:
            return FsckReport(self.path, len(scan.records))
        if not repair:
            return FsckReport(self.path, len(scan.records), torn=scan.torn)
        backup = self._repair_torn_tail(scan.torn)
        return FsckReport(
            self.path,
            len(scan.records),
            torn=scan.torn,
            repaired=True,
            backup=backup,
        )

    def _backup_path(self) -> Path:
        """First unclaimed ``.bak`` sidecar name for a torn-tail repair."""
        backup = self.path.with_name(self.path.name + ".bak")
        counter = 0
        while backup.exists():
            counter += 1
            backup = self.path.with_name(f"{self.path.name}.bak.{counter}")
        return backup

    def _repair_torn_tail(self, torn: TornTail) -> Path:
        """Copy the torn tail to a fresh sidecar and truncate at the tear."""
        backup = self._backup_path()
        raw = self.path.read_bytes()
        backup.write_bytes(raw[torn.byte_offset :])
        with self.path.open("r+b") as handle:
            handle.truncate(torn.byte_offset)
            os.fsync(handle.fileno())
        fsync_dir(self.path.parent)
        return backup


def as_ledger(ledger: "RunLedger | Path | str | None") -> RunLedger | None:
    """Coerce the ``ledger=`` argument accepted by runner/pipeline/CLI."""
    if ledger is None or isinstance(ledger, RunLedger):
        return ledger
    return RunLedger(ledger)
