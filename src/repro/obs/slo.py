"""Rolling multi-window SLO error-budget and burn-rate tracking.

A serving SLO ("99.9 % of requests succeed, and count a request slower
than the latency threshold as a failure") is only actionable live if
the daemon itself can answer *how fast am I spending my error budget*.
This module implements the Google-SRE multi-window burn-rate scheme:

* every request is classified **good** or **bad** (an error status, or
  — when a latency threshold is configured — a slow success);
* the bad fraction over a rolling window, divided by the budget
  fraction ``1 - objective``, is that window's **burn rate** — burn
  rate 1.0 means the budget is being consumed exactly as fast as the
  SLO allows, 10.0 means ten times too fast;
* an alert requires a **fast** window (default 5 m) *and* a **slow**
  window (default 1 h) to burn together: the fast window gives low
  detection latency, the slow window keeps one brief spike from paging.

The tracker is a ring of one-second bins sized to the slowest window,
so ``record`` is O(1) and memory is fixed regardless of traffic.  The
clock is injected (``clock=``), which makes every rolling-window
behaviour — expiry, burn-rate arithmetic, multi-window breach logic —
exactly testable with a fake clock; the daemon passes the default
``time.monotonic``.  Stdlib-only.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

#: Default windows, seconds: Google SRE's fast-5m + slow-1h pairing.
DEFAULT_WINDOWS: tuple[float, float] = (300.0, 3600.0)

#: Default multi-window page threshold: at burn rate 14.4 a 30-day
#: budget is gone in ~2 days — the classic "2% of budget in 1h" page.
DEFAULT_BURN_THRESHOLD = 14.4


class SLOTracker:
    """Rolling good/bad accounting against an availability objective.

    ``objective`` is the target good fraction (0.999 = "three nines").
    ``latency_threshold`` (seconds, optional) widens "bad" to include
    slow successes, turning the availability SLO into a latency SLO.
    ``windows`` are the rolling spans, ascending; the first is the fast
    window, the last the slow one.
    """

    def __init__(
        self,
        objective: float = 0.999,
        windows: Sequence[float] = DEFAULT_WINDOWS,
        latency_threshold: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.windows = tuple(float(w) for w in windows)
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ValueError(f"windows must be positive, got {windows}")
        if any(b >= a for b, a in zip(self.windows, self.windows[1:])):
            raise ValueError(f"windows must be strictly ascending: {windows}")
        if latency_threshold is not None and latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be positive, got {latency_threshold}"
            )
        self.objective = float(objective)
        self.latency_threshold = latency_threshold
        self._clock = clock
        self._lock = threading.Lock()
        size = int(self.windows[-1])
        self._size = size
        self._stamp = [-1] * size  # absolute second each slot holds
        self._good = [0] * size
        self._bad = [0] * size

    # -- writers -------------------------------------------------------

    def record(self, ok: bool, latency: float | None = None) -> bool:
        """Account one request; returns whether it counted as bad.

        ``ok=False`` is always bad; an ok request is also bad when a
        latency threshold is configured and ``latency`` exceeds it.
        """
        bad = (not ok) or (
            self.latency_threshold is not None
            and latency is not None
            and latency > self.latency_threshold
        )
        now = int(self._clock())
        slot = now % self._size
        with self._lock:
            if self._stamp[slot] != now:
                self._stamp[slot] = now
                self._good[slot] = 0
                self._bad[slot] = 0
            if bad:
                self._bad[slot] += 1
            else:
                self._good[slot] += 1
        return bad

    # -- readers -------------------------------------------------------

    def _window_counts(self, window: float) -> tuple[int, int]:
        """(requests, bad) over the trailing ``window`` seconds."""
        now = int(self._clock())
        oldest = now - int(window) + 1
        good = bad = 0
        with self._lock:
            for slot in range(self._size):
                stamp = self._stamp[slot]
                if oldest <= stamp <= now:
                    good += self._good[slot]
                    bad += self._bad[slot]
        return good + bad, bad

    def burn_rate(self, window: float) -> float:
        """Bad fraction over ``window`` relative to the error budget.

        1.0 = spending the budget exactly at the sustainable rate; 0.0
        for an idle window (no traffic means no budget spend).
        """
        requests, bad = self._window_counts(window)
        if requests == 0:
            return 0.0
        return (bad / requests) / (1.0 - self.objective)

    def breaching(self, threshold: float = DEFAULT_BURN_THRESHOLD) -> bool:
        """Multi-window alert: every window burning past ``threshold``."""
        return all(self.burn_rate(window) >= threshold for window in self.windows)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready live view: per-window counts, ratios, burn rates."""
        windows: dict[str, dict[str, float]] = {}
        for window in self.windows:
            requests, bad = self._window_counts(window)
            bad_ratio = (bad / requests) if requests else 0.0
            windows[f"{int(window)}s"] = {
                "requests": requests,
                "bad": bad,
                "bad_ratio": bad_ratio,
                "burn_rate": bad_ratio / (1.0 - self.objective),
                "budget_left": max(
                    0.0, 1.0 - bad_ratio / (1.0 - self.objective)
                ),
            }
        return {
            "objective": self.objective,
            "latency_threshold_seconds": self.latency_threshold,
            "breaching": self.breaching(),
            "windows": windows,
        }
