"""Schema-versioned run profiles: JSON document + flame-style summary.

A *profile* is the machine-readable evidence trail behind a run: the
trace tree collected by a :class:`~repro.obs.trace.TraceRecorder`, the
metric snapshot of the run's :class:`~repro.obs.metrics.MetricsRegistry`,
and caller-supplied metadata (preset, regime, matcher), all under a
versioned schema so downstream tooling can detect incompatible changes.

Schema version policy (see DESIGN.md §7): ``version`` is bumped when a
required key is removed or its type changes; purely additive keys do
not bump it.  :func:`validate_profile` checks the structural contract
and is what ``repro profile summarize`` and the test suite run against
every emitted document.

Version history: **1** — meta/spans/events/metrics.  **2** — adds the
required ``provenance`` block (git SHA + dirty flag, python/numpy/scipy
versions; the same shape the run ledger stamps, built by
:func:`repro.obs.provenance.provenance`), closing the gap where a
profile document recorded *what* happened but not *which code* did it.
:func:`load_profile` stays backward compatible: version-1 documents
validate and load with ``provenance`` absent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.provenance import provenance
from repro.obs.trace import TraceRecorder
from repro.storage.durable import atomic_write

#: Document identifier; consumers reject anything else.
PROFILE_SCHEMA = "repro.profile"
#: Bumped on breaking changes only (removed/retyped required keys).
PROFILE_VERSION = 2
#: Older versions :func:`validate_profile` still accepts.
_READABLE_VERSIONS = (1, PROFILE_VERSION)

_SPAN_KEYS = {
    "name": str,
    "attrs": dict,
    "wall_seconds": (int, float),
    "cpu_seconds": (int, float),
    "rss_delta_bytes": int,
    "counters": dict,
    "children": list,
}


def build_profile(
    recorder: TraceRecorder,
    metrics: MetricsRegistry | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the profile document for one recorded run."""
    return {
        "schema": PROFILE_SCHEMA,
        "version": PROFILE_VERSION,
        "meta": dict(meta or {}),
        "provenance": provenance(),
        "spans": [root.as_dict() for root in recorder.roots],
        "events": [dict(event) for event in recorder.events],
        "metrics": (metrics or get_metrics()).snapshot(),
    }


def validate_profile(document: Any) -> dict[str, Any]:
    """Check ``document`` against the profile schema; return it.

    Raises ``ValueError`` naming the first structural violation — the
    guard every consumer (CLI summarizer, tests) runs before trusting a
    document.
    """
    if not isinstance(document, dict):
        raise ValueError(f"profile must be a JSON object, got {type(document).__name__}")
    if document.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"unknown profile schema {document.get('schema')!r}; "
            f"expected {PROFILE_SCHEMA!r}"
        )
    if document.get("version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported profile version {document.get('version')!r}; "
            f"this library reads versions {_READABLE_VERSIONS}"
        )
    for key, kind in (("meta", dict), ("spans", list), ("events", list), ("metrics", dict)):
        if not isinstance(document.get(key), kind):
            raise ValueError(f"profile {key!r} must be a {kind.__name__}")
    if document["version"] >= 2 and not isinstance(document.get("provenance"), dict):
        raise ValueError("profile 'provenance' must be a dict (required from version 2)")
    for span in document["spans"]:
        _validate_span(span, path="spans")
    for event in document["events"]:
        if not isinstance(event, dict) or not isinstance(event.get("name"), str):
            raise ValueError(f"malformed event entry: {event!r}")
    for section in ("counters", "gauges", "timers"):
        if not isinstance(document["metrics"].get(section), dict):
            raise ValueError(f"profile metrics must contain a {section!r} mapping")
    return document


def _validate_span(span: Any, path: str) -> None:
    if not isinstance(span, dict):
        raise ValueError(f"{path}: span must be an object, got {type(span).__name__}")
    for key, kind in _SPAN_KEYS.items():
        if key not in span:
            raise ValueError(f"{path}: span is missing required key {key!r}")
        if not isinstance(span[key], kind):
            raise ValueError(f"{path}.{key}: expected {kind}, got {type(span[key]).__name__}")
    for child in span["children"]:
        _validate_span(child, path=f"{path}.{span['name']}")


def write_profile(path: Path | str, document: Mapping[str, Any]) -> Path:
    """Serialise ``document`` (validated) to ``path`` as indented JSON.

    Lands through the atomic temp-file + rename protocol
    (:func:`~repro.storage.durable.atomic_write`): a crash mid-write
    never leaves a half-profile under this name.
    """
    document = validate_profile(dict(document))
    return atomic_write(
        Path(path), json.dumps(document, indent=2, sort_keys=False) + "\n"
    )


def load_profile(path: Path | str) -> dict[str, Any]:
    """Read and validate a profile document from ``path``."""
    return validate_profile(json.loads(Path(path).read_text(encoding="utf-8")))


def summarize(document: Mapping[str, Any], max_depth: int = 6) -> str:
    """Human flame-style summary of a profile document.

    One line per distinct span name and depth — same-named siblings are
    merged flame-graph style (a hundred ``sinkhorn.iter`` spans render
    as one ``x100`` line) — with wall time, share of the enclosing
    root, CPU time, and counters; followed by the event tally and the
    metric counters.
    """
    document = validate_profile(dict(document))
    lines: list[str] = []
    meta = document["meta"]
    if meta:
        rendered = "  ".join(f"{key}={value}" for key, value in meta.items())
        lines.append(f"profile ({rendered})")
    else:
        lines.append("profile")
    stamp = document.get("provenance")
    if stamp:
        line = f"python={stamp.get('python')}  numpy={stamp.get('numpy')}"
        git = stamp.get("git")
        if git:
            line += f"  git={git['sha'][:12]}" + ("+dirty" if git.get("dirty") else "")
        lines.append(line)

    lines.append("-- spans " + "-" * 50)
    for root in _merge_siblings(document["spans"]):
        total = root["wall_seconds"] or 1e-12
        for depth, span in _walk(root, max_depth):
            share = 100.0 * span["wall_seconds"] / total
            extras = ""
            if span["calls"] > 1:
                extras += f"  x{span['calls']}"
            if span["counters"]:
                extras += "  " + " ".join(
                    f"{name}={_fmt_count(value)}" for name, value in sorted(span["counters"].items())
                )
            if span["rss_delta_bytes"]:
                extras += f"  +rss={span['rss_delta_bytes'] / 2**20:.1f}MiB"
            lines.append(
                f"{'  ' * depth}{span['name']:<{max(1, 30 - 2 * depth)}} "
                f"{span['wall_seconds'] * 1000:9.2f}ms {share:5.1f}% "
                f"cpu={span['cpu_seconds'] * 1000:.2f}ms{extras}"
            )

    if document["events"]:
        lines.append("-- events " + "-" * 49)
        tally: dict[str, int] = {}
        for entry in document["events"]:
            tally[entry["name"]] = tally.get(entry["name"], 0) + 1
        for name, count in sorted(tally.items()):
            lines.append(f"{name:<40} x{count}")

    counters = document["metrics"]["counters"]
    if counters:
        lines.append("-- counters " + "-" * 47)
        for name, value in sorted(counters.items()):
            lines.append(f"{name:<40} {_fmt_count(value)}")
    timers = document["metrics"]["timers"]
    if timers:
        lines.append("-- timers " + "-" * 49)
        for name, entry in sorted(timers.items()):
            lines.append(
                f"{name:<40} {entry['seconds'] * 1000:9.2f}ms x{int(entry['count'])}"
            )
    return "\n".join(lines)


def _merge_siblings(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Flame-graph merge: same-named siblings summed into one frame.

    Timings, RSS deltas, and counters add; ``calls`` counts the merged
    occurrences; children of merged spans are pooled and merged
    recursively.  First-occurrence order is preserved.
    """
    merged: dict[str, dict[str, Any]] = {}
    for span in spans:
        frame = merged.get(span["name"])
        if frame is None:
            merged[span["name"]] = frame = {
                "name": span["name"],
                "attrs": dict(span["attrs"]),
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "rss_delta_bytes": 0,
                "counters": {},
                "calls": 0,
                "_children": [],
            }
        frame["wall_seconds"] += span["wall_seconds"]
        frame["cpu_seconds"] += span["cpu_seconds"]
        frame["rss_delta_bytes"] += span["rss_delta_bytes"]
        frame["calls"] += 1
        for name, value in span["counters"].items():
            frame["counters"][name] = frame["counters"].get(name, 0) + value
        frame["_children"].extend(span["children"])
    for frame in merged.values():
        frame["children"] = _merge_siblings(frame.pop("_children"))
    return list(merged.values())


def _walk(span: Mapping[str, Any], max_depth: int) -> Iterator[tuple[int, Mapping[str, Any]]]:
    """Depth-first (depth, span) pairs down to ``max_depth``."""
    stack: list[tuple[int, Mapping[str, Any]]] = [(0, span)]
    while stack:
        depth, current = stack.pop()
        yield depth, current
        if depth + 1 <= max_depth:
            for child in reversed(current["children"]):
                stack.append((depth + 1, child))


def _fmt_count(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.3f}"
