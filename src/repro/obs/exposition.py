"""Deterministic Prometheus text-format rendering of a metrics registry.

One function, :func:`render`, turns a :class:`~repro.obs.metrics.
MetricsRegistry` into the Prometheus exposition format (text version
0.0.4): counters as ``_total`` series, gauges as-is, timers as
``summary`` ``_sum``/``_count`` pairs, and histograms as cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count`` — the shape every
Prometheus-compatible scraper (and ``promtool``) understands.  The
daemon serves it at ``GET /metrics`` and ``repro obs scrape`` snapshots
it to a file.

Rendering is **deterministic by construction**: families are emitted in
a fixed section order, names sort lexicographically within a section,
bucket bounds come from the histogram's fixed layout, and floats render
through one canonical formatter (shortest round-trip ``repr``, integral
values as integers).  Identical registry state therefore yields
byte-identical output — pinned by a golden test — which is what lets a
scrape double as a diffable artifact in CI.

A tolerant :func:`parse_histograms` reads the histogram series back
(the soak harness uses it to derive server-side tail latency from a
live scrape and cross-check the client's stopwatch).  Stdlib-only.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry

#: The Content-Type a /metrics response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exported series name starts with this.
PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{le="(?P<le>[^"]+)"\})?'
    r"\s+(?P<value>\S+)$"
)


def metric_name(dotted: str) -> str:
    """``serve.request.seconds`` -> ``repro_serve_request_seconds``."""
    return PREFIX + _NAME_RE.sub("_", dotted)


def format_value(value: float) -> str:
    """Canonical sample-value rendering: one spelling per float.

    Integral values print as integers (Prometheus accepts both; one
    spelling keeps the bytes stable), everything else as shortest
    round-trip ``repr`` — deterministic on any IEEE-754 platform.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render(registry: MetricsRegistry) -> str:
    """The full registry in Prometheus text format (trailing newline)."""
    snap = registry.snapshot()
    lines: list[str] = []

    for dotted, value in sorted(snap["counters"].items()):
        name = metric_name(dotted) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {format_value(value)}")

    for dotted, value in sorted(snap["gauges"].items()):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {format_value(value)}")

    for dotted, entry in sorted(snap["timers"].items()):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name}_seconds summary")
        lines.append(f"{name}_seconds_sum {format_value(entry['seconds'])}")
        lines.append(f"{name}_seconds_count {format_value(entry['count'])}")

    for dotted, hist in sorted(snap["histograms"].items()):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{format_value(bound)}"}} {cumulative}'
            )
        cumulative += hist["counts"][-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {format_value(hist['sum'])}")
        lines.append(f"{name}_count {format_value(hist['count'])}")

    return "\n".join(lines) + "\n"


def parse_histograms(text: str) -> dict[str, dict[str, object]]:
    """Histogram series from one exposition document.

    Returns ``{name: {"buckets": [(le, cumulative_count), ...],
    "sum": float, "count": int}}`` with buckets in document order
    (ascending ``le``, ``+Inf`` last).  Built for reading back our own
    :func:`render` output and any well-formed Prometheus exposition;
    non-histogram series are ignored.
    """
    histograms: dict[str, dict[str, object]] = {}
    declared: set[str] = set()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE" and parts[3] == "histogram":
                declared.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        name, le, value = match.group("name", "le", "value")
        for base in declared:
            if name == base + "_bucket" and le is not None:
                entry = histograms.setdefault(
                    base, {"buckets": [], "sum": 0.0, "count": 0}
                )
                bound = float("inf") if le == "+Inf" else float(le)
                entry["buckets"].append((bound, int(float(value))))
            elif name == base + "_sum":
                histograms.setdefault(
                    base, {"buckets": [], "sum": 0.0, "count": 0}
                )["sum"] = float(value)
            elif name == base + "_count":
                histograms.setdefault(
                    base, {"buckets": [], "sum": 0.0, "count": 0}
                )["count"] = int(float(value))
    return histograms
