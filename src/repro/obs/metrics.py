"""Process-wide named counters, gauges, and timers.

Where :mod:`repro.obs.trace` answers "where did this run spend its
time", the metrics registry answers "how often did the interesting
things happen": kernel chunk counts, engine cache hits and misses,
Sinkhorn iterations, supervisor retries and degradations.  Counters are
plain dictionary increments at coarse (per-run, per-event) granularity,
so the registry is always on — there is no hot-loop cost to disable.

Components read the active registry through :func:`get_metrics` at
event time, so a run profiled under :func:`scoped` sees only its own
counts::

    with scoped() as registry:
        run_matcher()
    registry.counter("supervisor.retries")      # this run's retries only

Instrumented call sites use the dotted-name taxonomy documented in
DESIGN.md §7: ``engine.*`` for the similarity engine, ``sinkhorn.*``
for the Sinkhorn kernel, ``supervisor.*`` for the runtime.  Stdlib-only.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class MetricsRegistry:
    """Thread-safe named counters, gauges, and accumulating timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [seconds, count]

    # -- writers -------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the ``name`` counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the ``name`` gauge to its most recent ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the enclosed block's wall time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                entry = self._timers.setdefault(name, [0.0, 0])
                entry[0] += elapsed
                entry[1] += 1

    # -- readers -------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of the ``name`` counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, dict[str, float] | dict[str, dict[str, float]]]:
        """JSON-ready copy of every counter, gauge, and timer."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {"seconds": seconds, "count": count}
                    for name, (seconds, count) in self._timers.items()
                },
            }

    def reset(self) -> None:
        """Zero every counter, gauge, and timer."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


_global = MetricsRegistry()
_active = _global


def get_metrics() -> MetricsRegistry:
    """The active registry (the process-wide default unless scoped)."""
    return _active


@contextmanager
def scoped(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Swap in ``registry`` (or a fresh one) as the active registry.

    Restores the previous registry on exit, so a profiled run's counts
    are isolated from the process-wide totals — and from other profiled
    runs in the same process.
    """
    global _active
    previous = _active
    _active = registry or MetricsRegistry()
    try:
        yield _active
    finally:
        _active = previous
