"""Process-wide named counters, gauges, timers, and streaming histograms.

Where :mod:`repro.obs.trace` answers "where did this run spend its
time", the metrics registry answers "how often did the interesting
things happen": kernel chunk counts, engine cache hits and misses,
Sinkhorn iterations, supervisor retries and degradations.  Counters are
plain dictionary increments at coarse (per-run, per-event) granularity,
so the registry is always on — there is no hot-loop cost to disable.

Components read the active registry through :func:`get_metrics` at
event time, so a run profiled under :func:`scoped` sees only its own
counts::

    with scoped() as registry:
        run_matcher()
    registry.counter("supervisor.retries")      # this run's retries only

Instrumented call sites use the dotted-name taxonomy documented in
DESIGN.md §7: ``engine.*`` for the similarity engine, ``sinkhorn.*``
for the Sinkhorn kernel, ``supervisor.*`` for the runtime, ``serve.*``
for the daemon.  Distributions (request latency, batch sizes) go
through :meth:`MetricsRegistry.histogram` — log-bucketed streaming
histograms (:mod:`repro.obs.histogram`) that the Prometheus exposition
(:mod:`repro.obs.exposition`) renders with ``_bucket``/``_sum``/
``_count`` series.  Stdlib-only.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.obs.histogram import DEFAULT_LATENCY_BOUNDS, Histogram


class MetricsRegistry:
    """Thread-safe named counters, gauges, timers, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [seconds, count]
        self._histograms: dict[str, Histogram] = {}

    # -- writers -------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the ``name`` counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the ``name`` gauge to its most recent ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the enclosed block's wall time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` under the ``name`` timer directly.

        The explicit form of :meth:`timer` — for call sites that already
        measured the duration, and for tests that need deterministic
        timer values (the exposition golden seeds timers through this).
        """
        with self._lock:
            entry = self._timers.setdefault(name, [0.0, 0])
            entry[0] += seconds
            entry[1] += count

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> Histogram:
        """The ``name`` histogram, created on first use.

        ``bounds`` fixes the bucket layout at creation (default: the
        log-spaced latency buckets).  Re-requesting an existing
        histogram with *different* bounds is a programming error — two
        call sites disagreeing on layout would silently corrupt
        quantiles — so it raises.  The returned histogram is itself
        thread-safe: hot paths hold it and observe without re-entering
        the registry lock.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(DEFAULT_LATENCY_BOUNDS if bounds is None else bounds)
                self._histograms[name] = hist
                return hist
        if bounds is not None and tuple(float(b) for b in bounds) != hist.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with different bounds"
            )
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the ``name`` histogram (default bounds)."""
        self.histogram(name).observe(value)

    # -- readers -------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of the ``name`` counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready copy of every counter, gauge, timer, and histogram."""
        with self._lock:
            histograms = dict(self._histograms)
            snap: dict[str, dict] = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {"seconds": seconds, "count": count}
                    for name, (seconds, count) in self._timers.items()
                },
            }
        # Each histogram snapshots under its own lock, outside ours.
        snap["histograms"] = {
            name: hist.snapshot() for name, hist in histograms.items()
        }
        return snap

    def reset(self) -> None:
        """Zero every counter, gauge, timer, and histogram."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()


_global = MetricsRegistry()
_active = _global


def get_metrics() -> MetricsRegistry:
    """The active registry (the process-wide default unless scoped)."""
    return _active


@contextmanager
def scoped(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Swap in ``registry`` (or a fresh one) as the active registry.

    Restores the previous registry on exit, so a profiled run's counts
    are isolated from the process-wide totals — and from other profiled
    runs in the same process.
    """
    global _active
    previous = _active
    _active = registry or MetricsRegistry()
    try:
        yield _active
    finally:
        _active = previous
