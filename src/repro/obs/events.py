"""Live telemetry events: structured progress signals through pluggable sinks.

The trace layer (:mod:`repro.obs.trace`) answers "where did the time go"
*after* a run; this module answers "what is happening *now*".  A
multi-minute table sweep used to be silent until it printed its result —
with a sink installed, the runner, supervisor, and engine emit point
events (sweep started, score matrix ready, matcher finished, retry
fired, ladder hop taken) the moment they happen::

    with events.emitting(events.HumanSink()):      # live lines on stderr
        run_experiment(config)

    sink = events.MemorySink()                     # deterministic, for tests
    with events.emitting(sink):
        run_experiment(config)
    [e.name for e in sink.events]

Like tracing, the stream is **disabled by default**: :func:`emit` returns
after one module-global truthiness check while no sink is installed, so
the instrumented hot paths cost a call and a branch — the overhead
benchmark (``benchmarks/test_obs_overhead.py``) holds the whole
ledger+events layer under its 2 % budget on a full sweep.

Events are ordered by a process-wide sequence number assigned under a
lock, so concurrent emitters (engine worker threads, the supervisor's
watchdog) serialise into one deterministic timeline; ``elapsed`` wall
offsets are informational and excluded from determinism contracts.  A
sink that raises is dropped after a one-line warning rather than taking
the run down with it — telemetry is never load-bearing.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, TextIO


@dataclass(frozen=True)
class Event:
    """One telemetry point: ordered, named, with free-form attributes."""

    #: Process-wide emission order (contiguous from 1 per process).
    seq: int
    name: str
    attrs: Mapping[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds since the emitter module was first loaded.
    #: Informational only — determinism contracts ignore it.
    elapsed: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "name": self.name,
            "attrs": dict(self.attrs),
            "elapsed": self.elapsed,
        }


class EventSink:
    """Receives every emitted :class:`Event`; subclasses render/store it."""

    def handle(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; called when the sink is uninstalled."""


class MemorySink(EventSink):
    """Keeps events in order on a list — the test suite's sink."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def names(self) -> list[str]:
        return [event.name for event in self.events]


class HumanSink(EventSink):
    """One readable line per event, for watching a sweep live.

    Writes to ``stream`` (default stderr, so piped table output stays
    clean) as ``[  12.3s] matcher.finish  matcher=Hun. f1=0.886``.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def handle(self, event: Event) -> None:
        attrs = "  ".join(f"{key}={_render(value)}" for key, value in event.attrs.items())
        self._stream.write(
            f"[{event.elapsed:7.1f}s] {event.name:<28s} {attrs}".rstrip() + "\n"
        )
        self._stream.flush()


class JsonlSink(EventSink):
    """Appends one JSON object per event to a file (opened lazily)."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None

    def handle(self, event: Event) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event.as_dict(), sort_keys=False) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


_started = time.perf_counter()
_lock = threading.Lock()
_seq = 0
#: Installed sinks.  Emptiness is the fast-path check in :func:`emit`,
#: so the disabled stream costs one truthiness test.
_sinks: list[EventSink] = []


def enabled() -> bool:
    """Whether any sink is installed (i.e. events are being delivered)."""
    return bool(_sinks)


def add_sink(sink: EventSink) -> EventSink:
    """Install ``sink``; it receives every subsequent event."""
    with _lock:
        _sinks.append(sink)
    return sink


def remove_sink(sink: EventSink) -> None:
    """Uninstall ``sink`` (no-op when absent) and close it."""
    with _lock:
        if sink in _sinks:
            _sinks.remove(sink)
    sink.close()


def emit(name: str, **attrs: Any) -> None:
    """Deliver one event to every installed sink (no-op when none are)."""
    if not _sinks:
        return
    global _seq
    with _lock:
        _seq += 1
        event = Event(
            seq=_seq, name=name, attrs=attrs,
            elapsed=time.perf_counter() - _started,
        )
        sinks = list(_sinks)
    for sink in sinks:
        try:
            sink.handle(event)
        except Exception as err:  # noqa: BLE001 - telemetry is not load-bearing
            remove_sink(sink)
            # Count the drop in the metrics registry so lost telemetry
            # is visible in /stats, /metrics, and profiles — the stderr
            # line below is the only other trace it ever happened.
            from repro.obs import metrics as obs_metrics

            obs_metrics.get_metrics().inc("events.sink_dropped")
            print(
                f"repro.obs.events: sink {type(sink).__name__} failed "
                f"({type(err).__name__}: {err}); sink dropped",
                file=sys.stderr,
            )


class emitting:
    """Context manager installing sinks for the enclosed run.

    ``with emitting(HumanSink()) as sink:`` installs the sink(s) on
    entry and removes (and closes) them on exit — the scoped form the
    CLI and the tests use so a sweep's telemetry never leaks into the
    next one.
    """

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = list(sinks) or [MemorySink()]

    def __enter__(self) -> EventSink:
        for sink in self.sinks:
            add_sink(sink)
        return self.sinks[0]

    def __exit__(self, *exc_info: object) -> None:
        for sink in self.sinks:
            remove_sink(sink)
