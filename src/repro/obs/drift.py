"""Accuracy drift watch: ledger records vs. committed reference bands.

Benchmarking studies (OpenEA; Dao et al.) make the same methodological
point as EXPERIMENTS.md: reproducible comparison needs explicit
tolerance bands, not eyeballed tables.  This module is that gate for the
reproduction's own history.  A *reference document*
(``benchmarks/results/REFERENCE_accuracy.json``) commits, per
(preset, regime, matcher) cell, the seed-0 F1 and Hits@1 with a
tolerance band, plus the paper's qualitative *ordering* constraints
("Sink. >= DInf on R-DBP"); :func:`check_drift` compares the latest
ledger record of each cell against those bands and reports every
violation with the offending matcher, metric, observed value, and band.
``repro runs drift`` exits nonzero on any violation — the CI job that
turns an accuracy regression into a red build instead of a published
wrong table.

The canonical seeded sweep behind the committed reference lives in
:func:`reference_configs`; ``make reference-update`` regenerates both
the seed-0 ledger and the reference document from it (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.ledger import RECORD_STATUSES, cell_key

#: Document identifier; readers reject anything else.
REFERENCE_SCHEMA = "repro.reference_accuracy"
#: Bumped on breaking changes only (removed/retyped required keys).
REFERENCE_VERSION = 1

#: Default committed artifact locations (repo-relative), shared by the
#: CLI defaults, the Makefile targets, and the CI drift job.
DEFAULT_REFERENCE_PATH = Path("benchmarks/results/REFERENCE_accuracy.json")
DEFAULT_LEDGER_PATH = Path("benchmarks/results/ledger_seed0.jsonl")

#: Per-metric tolerance applied when building a reference.  The sweeps
#: are deterministic under a fixed seed, but BLAS summation order and
#: argmax tie-breaks may shift a few decisions across platforms, so the
#: bands absorb small wobble while catching real regressions.
DEFAULT_TOLERANCES: Mapping[str, float] = {"f1": 0.05, "hits@1": 0.05}


def reference_configs() -> list["ExperimentConfig"]:
    """The canonical seeded sweep the committed reference is built from.

    Small enough for CI (three sweeps, well under a minute) yet wide
    enough to cover the paper's headline shapes: a dense DBP preset
    under both the strong (R) and weak (G) encoder regimes, and a sparse
    SRPRS preset under R.
    """
    from repro.experiments.config import ExperimentConfig

    return [
        ExperimentConfig(preset="dbp15k/zh_en", input_regime="R", scale=0.5, seed=0),
        ExperimentConfig(preset="dbp15k/zh_en", input_regime="G", scale=0.5, seed=0),
        ExperimentConfig(preset="srprs/en_fr", input_regime="R", scale=0.5, seed=0),
    ]


#: Ordering constraints mirroring EXPERIMENTS.md's asserted shapes.
#: Each says: on (preset, regime), ``higher``'s metric must be at least
#: ``lower``'s minus ``margin``.
DEFAULT_ORDERINGS: tuple[dict[str, Any], ...] = (
    {"preset": "dbp15k/zh_en", "regime": "R", "higher": "Sink.", "lower": "DInf",
     "metric": "f1", "margin": 0.0},
    {"preset": "dbp15k/zh_en", "regime": "R", "higher": "Hun.", "lower": "DInf",
     "metric": "f1", "margin": 0.0},
    {"preset": "dbp15k/zh_en", "regime": "G", "higher": "Sink.", "lower": "DInf",
     "metric": "f1", "margin": 0.0},
)


@dataclass(frozen=True)
class Violation:
    """One drift-gate failure, naming exactly what moved and by how much."""

    #: "band" (metric left its tolerance band), "ordering" (a
    #: qualitative constraint flipped), "missing" (no ledger record for
    #: a reference cell), or "failed" (the cell's latest run failed).
    kind: str
    preset: str
    regime: str
    matcher: str
    metric: str
    observed: float | None = None
    expected_low: float | None = None
    expected_high: float | None = None
    detail: str = ""

    def describe(self) -> str:
        cell = f"{self.preset}/{self.regime}/{self.matcher}"
        if self.kind == "band":
            observed = "missing" if self.observed is None else f"{self.observed:.4f}"
            return (
                f"{cell}: {self.metric}={observed} outside "
                f"[{self.expected_low:.4f}, {self.expected_high:.4f}]"
            )
        if self.kind == "ordering":
            return f"{cell}: ordering violated — {self.detail}"
        if self.kind == "missing":
            return f"{cell}: no ledger record for reference cell"
        return f"{cell}: latest run failed ({self.detail})"


@dataclass
class DriftReport:
    """Outcome of one drift check: every violation plus a cell tally."""

    violations: list[Violation] = field(default_factory=list)
    cells_checked: int = 0
    orderings_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"drift check: {self.cells_checked} cells, "
            f"{self.orderings_checked} orderings, "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(f"  DRIFT {v.describe()}" for v in self.violations)
        if self.ok:
            lines.append("  all cells within reference bands")
        return "\n".join(lines)


def build_reference(
    records: Iterable[Mapping[str, Any]],
    *,
    tolerances: Mapping[str, float] = DEFAULT_TOLERANCES,
    orderings: Iterable[Mapping[str, Any]] = DEFAULT_ORDERINGS,
    source: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Reference document from a seeded ledger's successful records.

    Each completed cell contributes its F1 and (space-level) Hits@1 with
    the per-metric tolerance; ``orderings`` are copied through after
    checking they refer to recorded cells.  ``source`` is free-form
    metadata describing the generating run (seed, scale, git SHA).
    """
    cells: dict[str, dict[str, Any]] = {}
    latest: dict[tuple[str, str, str], Mapping[str, Any]] = {}
    for record in records:
        latest[cell_key(record)] = record
    for (preset, regime, matcher), record in sorted(latest.items()):
        if record["status"] == "failed":
            continue
        metrics = {"f1": record["metrics"]["f1"]}
        if "hits@1" in record["ranking"]:
            metrics["hits@1"] = record["ranking"]["hits@1"]
        cells["|".join((preset, regime, matcher))] = {
            "metrics": metrics,
            "tolerance": {name: tolerances.get(name, 0.05) for name in metrics},
        }
    if not cells:
        raise ValueError("cannot build a reference from zero successful records")
    orderings = [dict(entry) for entry in orderings]
    for entry in orderings:
        for side in ("higher", "lower"):
            key = "|".join((entry["preset"], entry["regime"], entry[side]))
            if key not in cells:
                raise ValueError(f"ordering refers to unrecorded cell {key!r}")
    return {
        "schema": REFERENCE_SCHEMA,
        "version": REFERENCE_VERSION,
        "source": dict(source or {}),
        "cells": cells,
        "orderings": orderings,
    }


def validate_reference(document: Any) -> dict[str, Any]:
    """Check a reference document's structural contract; return it."""
    if not isinstance(document, dict):
        raise ValueError(
            f"reference must be a JSON object, got {type(document).__name__}"
        )
    if document.get("schema") != REFERENCE_SCHEMA:
        raise ValueError(
            f"unknown reference schema {document.get('schema')!r}; "
            f"expected {REFERENCE_SCHEMA!r}"
        )
    if document.get("version") != REFERENCE_VERSION:
        raise ValueError(
            f"unsupported reference version {document.get('version')!r}; "
            f"this library reads version {REFERENCE_VERSION}"
        )
    if not isinstance(document.get("cells"), dict) or not document["cells"]:
        raise ValueError("reference 'cells' must be a non-empty mapping")
    for key, cell in document["cells"].items():
        if len(key.split("|")) != 3:
            raise ValueError(f"reference cell key {key!r} is not 'preset|regime|matcher'")
        if not isinstance(cell, dict) or not isinstance(cell.get("metrics"), dict):
            raise ValueError(f"reference cell {key!r} must carry a 'metrics' mapping")
        if not isinstance(cell.get("tolerance"), dict):
            raise ValueError(f"reference cell {key!r} must carry a 'tolerance' mapping")
    if not isinstance(document.get("orderings"), list):
        raise ValueError("reference 'orderings' must be a list")
    for entry in document["orderings"]:
        for field_name in ("preset", "regime", "higher", "lower", "metric"):
            if not isinstance(entry.get(field_name), str):
                raise ValueError(f"reference ordering missing {field_name!r}: {entry!r}")
    return document


def load_reference(path: Path | str) -> dict[str, Any]:
    """Read and validate a reference document."""
    return validate_reference(json.loads(Path(path).read_text(encoding="utf-8")))


def write_reference(path: Path | str, document: Mapping[str, Any]) -> Path:
    """Serialise a validated reference document as indented JSON."""
    document = validate_reference(dict(document))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def _observed(record: Mapping[str, Any], metric: str) -> float | None:
    """A record's value for a reference metric (F1 from the matcher's
    own metrics, Hits@k/MRR from the space-level ranking diagnostics)."""
    if metric in ("precision", "recall", "f1"):
        metrics = record["metrics"]
        return None if metrics is None else float(metrics[metric])
    value = record["ranking"].get(metric)
    return None if value is None else float(value)


def check_drift(
    records: Iterable[Mapping[str, Any]],
    reference: Mapping[str, Any],
) -> DriftReport:
    """Compare the latest record of every reference cell against its bands.

    Degraded runs are compared like clean ones (their numbers are real,
    and a fallback that tanks accuracy *is* drift); a cell whose latest
    record is ``"failed"``, or that has no record at all, is itself a
    violation — silence is not a pass.
    """
    reference = validate_reference(dict(reference))
    latest: dict[tuple[str, str, str], Mapping[str, Any]] = {}
    for record in records:
        if record["status"] not in RECORD_STATUSES:  # pragma: no cover - validated
            continue
        latest[cell_key(record)] = record
    report = DriftReport()

    for key, cell in sorted(reference["cells"].items()):
        preset, regime, matcher = key.split("|")
        report.cells_checked += 1
        record = latest.get((preset, regime, matcher))
        if record is None:
            report.violations.append(
                Violation(kind="missing", preset=preset, regime=regime,
                          matcher=matcher, metric="-")
            )
            continue
        if record["status"] == "failed":
            error = record["error"] or {}
            report.violations.append(
                Violation(
                    kind="failed", preset=preset, regime=regime, matcher=matcher,
                    metric="-",
                    detail=f"{error.get('type', '?')}: {error.get('message', '')}",
                )
            )
            continue
        for metric, expected in cell["metrics"].items():
            tolerance = float(cell["tolerance"].get(metric, 0.0))
            observed = _observed(record, metric)
            low, high = float(expected) - tolerance, float(expected) + tolerance
            if observed is None or not (low <= observed <= high):
                report.violations.append(
                    Violation(
                        kind="band", preset=preset, regime=regime, matcher=matcher,
                        metric=metric, observed=observed,
                        expected_low=low, expected_high=high,
                    )
                )

    for entry in reference["orderings"]:
        report.orderings_checked += 1
        preset, regime = entry["preset"], entry["regime"]
        metric = entry["metric"]
        margin = float(entry.get("margin", 0.0))
        high_rec = latest.get((preset, regime, entry["higher"]))
        low_rec = latest.get((preset, regime, entry["lower"]))
        high_val = _observed(high_rec, metric) if high_rec else None
        low_val = _observed(low_rec, metric) if low_rec else None
        if high_val is None or low_val is None:
            report.violations.append(
                Violation(
                    kind="ordering", preset=preset, regime=regime,
                    matcher=entry["higher"], metric=metric,
                    detail=f"{entry['higher']} or {entry['lower']} has no usable record",
                )
            )
            continue
        if high_val < low_val - margin:
            report.violations.append(
                Violation(
                    kind="ordering", preset=preset, regime=regime,
                    matcher=entry["higher"], metric=metric, observed=high_val,
                    detail=(
                        f"{entry['higher']} {metric}={high_val:.4f} < "
                        f"{entry['lower']} {metric}={low_val:.4f} - {margin:g}"
                    ),
                )
            )
    return report
