"""Streaming log-bucketed histograms for live latency telemetry.

The offline harness computes tail percentiles from raw sample arrays
(:func:`repro.loadgen.report.latency_summary`) — exact, but unbounded
memory and only available after the run.  A serving daemon needs the
opposite trade: O(1) memory per metric, O(1) ``observe``, mergeable
across scopes, and a quantile *estimate* good to one bucket width at
any moment.  That is exactly what a fixed-bucket histogram gives, and
fixing the bucket layout up front is what makes two histograms (two
worker registries, two scrapes, client and server) directly comparable
— the same reason Prometheus chose cumulative fixed buckets.

Buckets are **log-spaced** (each upper bound doubles), so relative
estimation error is constant across six decades of latency: a p99 read
from bucket counts is off by at most one bucket width, i.e. at most 2x
— and in practice the interpolated estimate lands much closer.  The
soak harness leans on this contract: the CI smoke asserts the server's
bucket-derived p99 agrees with the client's exact open-loop p99 to
within one bucket width.

Thread safety is per-histogram (one small lock around four integers and
a list), so the registry can hand out a histogram once and hot paths
can observe without touching the registry lock again.  Stdlib-only.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Sequence

#: Default latency bucket upper bounds, in seconds: 0.1 ms doubling up
#: to ~105 s (21 buckets + overflow).  Doubling from a single anchor
#: keeps the sequence bit-identical on every platform — the Prometheus
#: exposition golden test depends on that.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(1e-4 * 2.0**i for i in range(21))


def _validated_bounds(bounds: Iterable[float]) -> tuple[float, ...]:
    out = tuple(float(b) for b in bounds)
    if not out:
        raise ValueError("histogram needs at least one bucket bound")
    for bound in out:
        if not (bound > 0.0) or bound != bound or bound == float("inf"):
            raise ValueError(f"bucket bounds must be positive finite, got {bound!r}")
    if any(b >= a for b, a in zip(out, out[1:])):
        raise ValueError(f"bucket bounds must be strictly ascending: {out}")
    return out


class Histogram:
    """Fixed-bucket streaming histogram: thread-safe, mergeable.

    ``bounds`` are bucket *upper* bounds with Prometheus ``le``
    semantics: bucket ``i`` counts observations ``value <= bounds[i]``
    (and above the previous bound); one implicit overflow bucket counts
    everything beyond the last bound.  Two histograms merge only when
    their bounds are identical — a deliberate restriction that keeps
    merged quantiles exact at the bucket level.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        self.bounds = _validated_bounds(bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    # -- writers -------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation (non-finite values are rejected)."""
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"cannot observe non-finite value {value!r}")
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s counts into this histogram (returns self)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        counts, total, count = other._snapshot_parts()
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += total
            self._count += count
        return self

    def copy(self) -> "Histogram":
        """An independent histogram holding the same counts."""
        clone = Histogram(self.bounds)
        clone.merge(self)
        return clone

    # -- readers -------------------------------------------------------

    def _snapshot_parts(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_bounds(self, value: float) -> tuple[float, float]:
        """The ``(lower, upper)`` bounds of the bucket holding ``value``.

        The first bucket's lower bound is 0.0; the overflow bucket's
        upper bound is ``inf``.
        """
        index = bisect_left(self.bounds, float(value))
        lower = 0.0 if index == 0 else self.bounds[index - 1]
        upper = self.bounds[index] if index < len(self.bounds) else float("inf")
        return lower, upper

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile by linear in-bucket interpolation.

        Returns 0.0 for an empty histogram.  Estimates are monotone in
        ``q`` and always land inside (or on the boundary of) a populated
        bucket; observations in the overflow bucket are attributed to
        the last finite bound, the histogram's honest upper resolution.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, _, count = self._snapshot_parts()
        return quantile_from_counts(self.bounds, counts, count, q)

    def snapshot(self) -> dict[str, object]:
        """JSON-ready copy: bounds, per-bucket counts, sum, count."""
        counts, total, count = self._snapshot_parts()
        return {
            "bounds": list(self.bounds),
            "counts": counts,
            "sum": total,
            "count": count,
        }

    def reset(self) -> None:
        """Zero every bucket."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


def quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], count: int, q: float
) -> float:
    """Quantile estimate from per-bucket counts (shared with exposition).

    ``counts`` has one entry per bound plus the overflow bucket.  The
    target rank is interpolated linearly inside its bucket; the first
    bucket's lower edge is 0 and the overflow bucket reports the last
    finite bound.
    """
    if count <= 0:
        return 0.0
    target = q * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            if index >= len(bounds):
                return float(bounds[-1])
            lower = 0.0 if index == 0 else float(bounds[index - 1])
            upper = float(bounds[index])
            fraction = (target - cumulative) / bucket_count
            return lower + (upper - lower) * max(0.0, min(1.0, fraction))
        cumulative += bucket_count
    return float(bounds[-1])


def quantile_from_cumulative(
    buckets: Sequence[tuple[float, int]], q: float
) -> float:
    """Quantile from Prometheus-style cumulative ``(le, count)`` buckets.

    The final bucket is expected to be ``(inf, total)``; converts to
    per-bucket counts and defers to :func:`quantile_from_counts`.
    """
    if not buckets:
        return 0.0
    bounds = [le for le, _ in buckets if le != float("inf")]
    cumulative = [c for _, c in buckets]
    counts, previous = [], 0
    for value in cumulative:
        counts.append(max(0, value - previous))
        previous = value
    if len(counts) == len(bounds):  # no explicit +Inf bucket
        counts.append(0)
    total = cumulative[-1]
    return quantile_from_counts(bounds, counts, total, q)


def bucket_width_at(bounds: Sequence[float], value: float) -> float:
    """Width of the bucket that would hold ``value`` (estimation error bar).

    For the overflow bucket the width of the last finite bucket is
    returned — the histogram cannot resolve finer than that anywhere
    past its range.
    """
    bounds = [float(b) for b in bounds]
    index = bisect_left(bounds, float(value))
    if index >= len(bounds):
        index = len(bounds) - 1
    lower = 0.0 if index == 0 else bounds[index - 1]
    return bounds[index] - lower
