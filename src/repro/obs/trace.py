"""Nestable tracing spans for the matching hot paths.

The paper's headline claims are comparative — Figure 5 and Table 6 rank
matchers by runtime and memory as much as by accuracy — so the library
needs a first-class way to see *where* time and memory go inside a run.
A :class:`TraceRecorder` collects a tree of :class:`Span` objects, each
carrying wall-clock time, CPU time, the process peak-RSS delta across
the span, free-form attributes, and named counters::

    recorder = TraceRecorder()
    with recording(recorder):
        with span("engine.similarity", metric="cosine") as sp:
            for i, rows in enumerate(chunks):
                with span("engine.chunk", parent=sp, index=i):
                    compute(rows)
            sp.count("chunks", len(chunks))

Tracing is **disabled by default**: the module-level :func:`span` and
:func:`event` delegate to the installed recorder, and the default
:class:`NullRecorder` returns a shared no-op context manager — the clean
path pays one attribute lookup and a call, nothing else.  A recorder is
installed for the duration of a profiled run via :func:`recording` (the
CLI's ``repro match --profile`` and the runner's ``profile=True`` do
exactly that) and uninstalled on exit, so benchmarks and production
sweeps are never instrumented by accident.

Spans opened on worker threads (the engine's chunk kernels) pass
``parent=`` explicitly because the thread-local span stack does not
cross thread boundaries; parentless spans on a fresh thread become
additional roots.  Everything here is stdlib-only.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

try:  # pragma: no cover - resource is stdlib on every POSIX platform
    import resource

    def _peak_rss_bytes() -> int:
        """Process peak RSS in bytes (ru_maxrss is KiB on Linux)."""
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

except ImportError:  # pragma: no cover - non-POSIX fallback

    def _peak_rss_bytes() -> int:
        return 0


@dataclass
class Span:
    """One traced phase: timings, attributes, counters, and children."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: Growth of the process peak RSS across the span, in bytes.  Zero
    #: when the high-water mark was set before the span started — the
    #: delta attributes *new* peaks to the span that caused them.
    rss_delta_bytes: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the span's ``name`` counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def annotate(self, **attrs: Any) -> None:
        """Attach or overwrite attributes after the span opened."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering (the profile document's span shape)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "rss_delta_bytes": self.rss_delta_bytes,
            "counters": dict(self.counters),
            "children": [child.as_dict() for child in self.children],
        }


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled.

    One shared, stateless instance is both the context manager and the
    object yielded by it, so ``with span(...) as sp: sp.count(...)``
    costs nothing beyond the calls themselves.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def count(self, name: str, value: float = 1) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder installed by default: every span is the shared no-op."""

    enabled = False

    def span(self, name: str, parent: object | None = None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None


class _SpanHandle:
    """Context manager that opens one live :class:`Span` on a recorder."""

    __slots__ = ("_recorder", "_span", "_parent", "_wall0", "_cpu0", "_rss0")

    def __init__(
        self, recorder: "TraceRecorder", span: Span, parent: Span | None
    ) -> None:
        self._recorder = recorder
        self._span = span
        self._parent = parent

    def __enter__(self) -> Span:
        self._recorder._push(self._span)
        self._rss0 = _peak_rss_bytes()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        span.wall_seconds = time.perf_counter() - self._wall0
        span.cpu_seconds = time.process_time() - self._cpu0
        span.rss_delta_bytes = max(0, _peak_rss_bytes() - self._rss0)
        self._recorder._pop(span, self._parent)


class TraceRecorder:
    """Collects a per-run trace tree from nested :func:`span` calls.

    The recorder keeps one span stack per thread: a span opened while
    another is active on the same thread becomes its child; a span with
    no active parent (or opened on a worker thread without ``parent=``)
    becomes a root.  :attr:`events` is a flat, ordered list of point
    events (supervisor retries, cache hits) stamped with their offset
    from the recorder's creation.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.events: list[dict[str, Any]] = []
        self._started = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording API -------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **attrs: Any) -> _SpanHandle:
        """Open a span; use as a context manager yielding the :class:`Span`.

        ``parent`` pins the span under an explicit parent — required when
        the span runs on a different thread than its logical parent.
        """
        return _SpanHandle(self, Span(name=name, attrs=attrs), parent)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event (no duration) on the run timeline."""
        record = {
            "name": name,
            "seconds": time.perf_counter() - self._started,
            "attrs": attrs,
        }
        with self._lock:
            self.events.append(record)

    # -- queries -------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """Every recorded span named ``name``."""
        return [span for span in self.walk() if span.name == name]

    # -- span-stack internals ------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, parent: Span | None) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if parent is None and stack:
            parent = stack[-1]
        if parent is not None and isinstance(parent, Span):
            with self._lock:
                parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)


_NULL_RECORDER = NullRecorder()
_recorder: "TraceRecorder | NullRecorder" = _NULL_RECORDER


def get_recorder() -> "TraceRecorder | NullRecorder":
    """The currently installed recorder (the null recorder by default)."""
    return _recorder


def tracing_enabled() -> bool:
    """Whether a real recorder is installed."""
    return _recorder.enabled


def install(recorder: "TraceRecorder | NullRecorder") -> None:
    """Make ``recorder`` the process-wide trace sink."""
    global _recorder
    _recorder = recorder


def uninstall() -> None:
    """Restore the disabled-by-default null recorder."""
    install(_NULL_RECORDER)


class recording:
    """Context manager installing a recorder for the enclosed run.

    ``with recording() as recorder:`` creates a fresh
    :class:`TraceRecorder`, installs it, and restores the previously
    installed recorder on exit — re-entrant, so a profiled experiment
    can wrap a profiled matcher without losing the outer trace.
    """

    def __init__(self, recorder: "TraceRecorder | None" = None) -> None:
        self.recorder = recorder or TraceRecorder()
        self._previous: "TraceRecorder | NullRecorder | None" = None

    def __enter__(self) -> TraceRecorder:
        self._previous = _recorder
        install(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info: object) -> None:
        install(self._previous or _NULL_RECORDER)


def span(name: str, parent: Span | None = None, **attrs: Any):
    """Open a span on the installed recorder (no-op while disabled)."""
    return _recorder.span(name, parent=parent, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point event on the installed recorder (no-op while disabled)."""
    _recorder.event(name, **attrs)
