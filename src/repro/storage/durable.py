"""Crash-safe persistence primitives: atomic renames and content checksums.

Every durable artifact in the repo — the memmap embedding store, the IVF
index document, the run ledger — used to be written in place: a crash
(or an injected torn write) mid-``write()`` left a half-file that later
readers either mis-parsed or choked on with a raw decoding error.  This
module centralises the two standard remedies:

* :func:`atomic_write` / :func:`atomic_writer` — the temp-file protocol:
  write to a temporary sibling in the *same directory*, flush, fsync,
  then ``os.replace`` onto the destination (atomic on POSIX within one
  filesystem), and fsync the directory so the rename itself survives a
  power cut.  A crash at any byte offset leaves either the old complete
  file or the new complete file, never a blend.
* :func:`payload_checksum` / :func:`verify_checksum` — blake2b content
  digests (the same construction as the engine's embedding fingerprint
  and the ledger's config fingerprint), embedded in an artifact's header
  at write time and recomputed on demand, so silent corruption *inside*
  a well-formed file (a flipped block, a hex-editor accident) surfaces
  as a typed :class:`~repro.errors.DataIntegrityError` naming the path
  and both digests instead of as garbage numbers.

Append-only files (the JSONL ledger) cannot use the rename protocol —
their durability story is fsync-on-append plus torn-tail recovery, which
lives with the ledger itself (:mod:`repro.obs.ledger`); :func:`fsync_file`
and :func:`fsync_dir` are the shared low-level pieces.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.errors import DataIntegrityError

#: Digest algorithm and size shared by every checksummed artifact.  16
#: bytes (128 bits) matches the engine/ledger fingerprints — collision
#: odds are negligible and the hex digest stays short enough for headers.
CHECKSUM_ALGORITHM = "blake2b"
CHECKSUM_DIGEST_SIZE = 16


def payload_checksum(payload: bytes | memoryview) -> str:
    """blake2b hex digest of ``payload`` (the artifact's content bytes)."""
    digest = hashlib.blake2b(digest_size=CHECKSUM_DIGEST_SIZE)
    digest.update(payload)
    return digest.hexdigest()


def verify_checksum(
    path: Path | str, expected: str, payload: bytes | memoryview, artifact: str = "file"
) -> str:
    """Recompute ``payload``'s digest and compare against ``expected``.

    Returns the recomputed digest on success; raises
    :class:`~repro.errors.DataIntegrityError` naming the path and both
    digests on mismatch — the one corruption message every durable
    artifact shares.
    """
    actual = payload_checksum(payload)
    if actual != expected:
        raise DataIntegrityError(
            f"{path}: {artifact} checksum mismatch: header records "
            f"{CHECKSUM_ALGORITHM}:{expected}, payload hashes to "
            f"{CHECKSUM_ALGORITHM}:{actual}; the file is corrupt"
        )
    return actual


def fsync_file(handle: IO[bytes] | IO[str]) -> None:
    """Flush ``handle`` and push its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(directory: Path | str) -> None:
    """fsync a directory so a rename/create inside it is itself durable.

    Best-effort: some platforms/filesystems refuse to open directories
    (or to fsync them); those cannot honour the stronger guarantee and
    the write-then-rename protocol still leaves a consistent file.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: Path | str) -> Iterator[IO[bytes]]:
    """Context manager yielding a binary handle that lands atomically.

    The handle writes to a temporary sibling of ``path`` (same directory,
    so the final ``os.replace`` never crosses a filesystem).  On clean
    exit the temp file is flushed, fsynced, renamed over ``path``, and
    the directory is fsynced; on *any* exception the temp file is
    removed and ``path`` is untouched — a torn write can only ever tear
    the invisible temp file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    handle = os.fdopen(fd, "wb")
    try:
        yield handle
        fsync_file(handle)
        handle.close()
        os.replace(temp_name, path)
    except BaseException:
        handle.close()
        try:
            os.unlink(temp_name)
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    fsync_dir(path.parent)


def atomic_write(path: Path | str, payload: bytes | str) -> Path:
    """Write ``payload`` to ``path`` via the temp-file + rename protocol.

    The whole-payload convenience form of :func:`atomic_writer`; text
    payloads are encoded as UTF-8.  Returns ``path``.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    path = Path(path)
    with atomic_writer(path) as handle:
        handle.write(payload)
    return path
