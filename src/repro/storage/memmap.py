"""Memmap-backed embedding store with a schema-versioned header.

File layout::

    [ 8 bytes magic ][ JSON header, space-padded to HEADER_BYTES - 8 ]
    [ raw row-major array buffer ]

The header records the schema version, dtype, shape, element order, and
(for stores persisted through :meth:`EmbeddingStore.write`) a blake2b
content checksum of the payload, and every open validates the metadata
plus the file size, so a truncated or foreign file fails loudly instead
of yielding garbage embeddings.  The body is read through
:class:`numpy.memmap`, so :meth:`rows` hands out zero-copy row-shard
views — the page cache, not the Python heap, holds the embeddings, and
multiple worker processes mapping the same store share the physical
pages.

Durability: :meth:`write` and :meth:`create` land through the atomic
temp-file + rename protocol (:mod:`repro.storage.durable`), so a crash
mid-write leaves either the previous complete store or the new one,
never a torn blend; corruption *inside* a well-formed file is caught by
the checksum (``open(verify=True)``, :meth:`verify`, or ``repro store
verify``) and surfaces as a typed
:class:`~repro.errors.DataIntegrityError` naming the path and both
digests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import DataIntegrityError
from repro.storage.durable import (
    CHECKSUM_ALGORITHM,
    atomic_writer,
    fsync_file,
    payload_checksum,
    verify_checksum,
)

STORE_MAGIC = b"REPROEMB"
STORE_FORMAT = "repro.embedding_store"
STORE_VERSION = 1
#: Versions this build can read.
_READABLE_VERSIONS = (STORE_VERSION,)
#: Fixed header region: magic + padded JSON.  The body starts here, so
#: the data offset never depends on header contents.
HEADER_BYTES = 4096
_ALLOWED_DTYPES = ("float32", "float64")


#: Sentinel for "no checksum key at all" — the legacy (pre-durability)
#: header shape.  Distinct from an explicit ``"checksum": null``, which
#: marks a ``create``d store that has not been sealed yet.
_NO_CHECKSUM = object()


def _build_header(
    shape: tuple[int, int],
    dtype: np.dtype,
    checksum: str | None | object = _NO_CHECKSUM,
    capacity: int | None = None,
) -> bytes:
    payload = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "dtype": dtype.name,
        "shape": list(shape),
        "order": "C",
    }
    if capacity is not None:
        # Preallocated row capacity: the file is sized for ``capacity``
        # rows while ``shape[0]`` says how many are logically filled.
        # Only written when a capacity was requested, so plain stores
        # stay byte-identical to older writers.
        payload["capacity"] = int(capacity)
    if checksum is None:
        # Explicit unsealed marker: the store is mid-fill, and a crash
        # here must stay distinguishable from a healthy legacy store.
        payload["checksum"] = None
    elif checksum is not _NO_CHECKSUM:
        payload["checksum"] = {"algorithm": CHECKSUM_ALGORITHM, "digest": checksum}
    encoded = json.dumps(payload, sort_keys=True).encode("ascii")
    room = HEADER_BYTES - len(STORE_MAGIC)
    if len(encoded) > room:  # pragma: no cover - needs absurd shapes
        raise ValueError(f"store header too large ({len(encoded)} > {room} bytes)")
    return STORE_MAGIC + encoded.ljust(room, b" ")


def _payload_view(array: np.ndarray) -> bytes | memoryview:
    """The raw payload bytes of ``array`` for hashing/writing (zero-copy).

    Empty arrays short-circuit to ``b""`` — a zero-sized memoryview
    cannot be cast to an unsigned-byte view.
    """
    array = np.ascontiguousarray(array)
    if array.size == 0:
        return b""
    return memoryview(array).cast("B")


def _check_matrix(shape: tuple[int, ...], dtype: np.dtype) -> tuple[int, int]:
    if len(shape) != 2:
        raise ValueError(f"embedding store holds 2-D matrices, got shape {shape}")
    n_rows, dim = int(shape[0]), int(shape[1])
    if n_rows < 0 or dim < 1:
        raise ValueError(f"invalid store shape {shape}")
    if dtype.name not in _ALLOWED_DTYPES:
        raise ValueError(
            f"embedding store dtype must be one of {_ALLOWED_DTYPES}, got {dtype.name}"
        )
    return n_rows, dim


def _read_header(path: Path) -> dict:
    with open(path, "rb") as handle:
        head = handle.read(HEADER_BYTES)
    if len(head) < HEADER_BYTES or not head.startswith(STORE_MAGIC):
        raise DataIntegrityError(
            f"{path} is not a repro embedding store (bad magic)"
        )
    try:
        header = json.loads(head[len(STORE_MAGIC):].decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DataIntegrityError(
            f"{path} has a corrupt store header: {error}"
        ) from error
    if not isinstance(header, dict) or header.get("format") != STORE_FORMAT:
        raise DataIntegrityError(f"{path} header is not {STORE_FORMAT!r}")
    if header.get("version") not in _READABLE_VERSIONS:
        raise DataIntegrityError(
            f"{path} has store version {header.get('version')!r}; "
            f"this build reads {_READABLE_VERSIONS}"
        )
    if header.get("order") != "C":
        raise DataIntegrityError(
            f"{path} has unsupported element order {header.get('order')!r}"
        )
    if header.get("dtype") not in _ALLOWED_DTYPES:
        raise DataIntegrityError(
            f"{path} has unsupported dtype {header.get('dtype')!r}"
        )
    shape = header.get("shape")
    if (
        not isinstance(shape, list)
        or len(shape) != 2
        or not all(isinstance(side, int) and side >= 0 for side in shape)
    ):
        raise DataIntegrityError(f"{path} has invalid shape {shape!r}")
    capacity = header.get("capacity")
    if capacity is not None and (
        not isinstance(capacity, int) or capacity < shape[0]
    ):
        raise DataIntegrityError(
            f"{path} has invalid capacity {capacity!r} for shape {shape!r}"
        )
    checksum = header.get("checksum")
    if checksum is not None and (
        not isinstance(checksum, dict)
        or checksum.get("algorithm") != CHECKSUM_ALGORITHM
        or not isinstance(checksum.get("digest"), str)
    ):
        raise DataIntegrityError(f"{path} has an invalid checksum block {checksum!r}")
    return header


class EmbeddingStore:
    """A 2-D embedding matrix persisted to disk and accessed via memmap.

    Construct through :meth:`write` (persist an in-memory array,
    checksummed), :meth:`create` (allocate an empty store to fill
    row-band by row-band; call :meth:`update_checksum` once filled), or
    :meth:`open` (map an existing file, optionally verifying the
    checksum).  Instances are context managers; :meth:`close` drops the
    mapping.
    """

    def __init__(self, path: Path, mmap: np.memmap, header: dict):
        self.path = path
        self.header = header
        # The mapping covers the full on-disk capacity; ``_n_rows`` is
        # the logical fill level (== capacity for plain stores).
        self._mmap: np.memmap | None = mmap
        self._n_rows: int = int(header["shape"][0])

    # -- constructors --------------------------------------------------

    @classmethod
    def write(cls, path: str | Path, array: np.ndarray) -> "EmbeddingStore":
        """Persist ``array`` to ``path`` atomically and return the mapped store.

        The payload checksum is embedded in the header, and the bytes
        land via temp-file + fsync + rename — a crash mid-write can
        never leave a half-store under this name.
        """
        array = np.ascontiguousarray(np.asarray(array))
        _check_matrix(array.shape, array.dtype)
        path = Path(path)
        digest = payload_checksum(_payload_view(array))
        with atomic_writer(path) as handle:
            handle.write(_build_header(array.shape, array.dtype, checksum=digest))
            handle.write(_payload_view(array))
        return cls.open(path)

    @classmethod
    def create(
        cls,
        path: str | Path,
        shape: tuple[int, int],
        dtype: str | np.dtype = "float32",
        capacity: int | None = None,
    ) -> "EmbeddingStore":
        """Allocate a zero-filled writable store (fill via ``rows``).

        Created atomically, with an explicit *unsealed* marker
        (``"checksum": null``) in place of a digest — the content is
        about to be overwritten band by band, and until
        :meth:`update_checksum` seals the store after the final band,
        :meth:`verify` treats it as a possible mid-fill crash, not a
        healthy pre-durability legacy store.

        ``capacity`` preallocates room for that many rows (>= the
        logical row count): the file is sized to capacity up front so
        :meth:`append_row` can admit new rows later without a rewrite —
        the serving layer's incremental-insert path.
        """
        dtype = np.dtype(dtype)
        n_rows, dim = _check_matrix(tuple(shape), dtype)
        if capacity is not None and capacity < n_rows:
            raise ValueError(
                f"capacity {capacity} is smaller than the row count {n_rows}"
            )
        file_rows = n_rows if capacity is None else int(capacity)
        path = Path(path)
        with atomic_writer(path) as handle:
            handle.write(
                _build_header((n_rows, dim), dtype, checksum=None, capacity=capacity)
            )
            handle.flush()
            handle.truncate(HEADER_BYTES + file_rows * dim * dtype.itemsize)
        return cls.open(path, mode="r+")

    @classmethod
    def open(
        cls, path: str | Path, mode: str = "r", verify: bool = False
    ) -> "EmbeddingStore":
        """Map an existing store, validating header and file size.

        ``verify=True`` additionally recomputes the payload checksum
        against the header's recorded digest (an O(file size) read —
        off the default open path on purpose) and raises
        :class:`~repro.errors.DataIntegrityError` on mismatch.
        """
        if mode not in ("r", "r+"):
            raise ValueError(f"mode must be 'r' or 'r+', got {mode!r}")
        path = Path(path)
        header = _read_header(path)
        dtype = np.dtype(header["dtype"])
        shape = (header["shape"][0], header["shape"][1])
        file_rows = int(header.get("capacity", shape[0]))
        expected = HEADER_BYTES + file_rows * shape[1] * dtype.itemsize
        actual = path.stat().st_size
        if actual != expected:
            raise DataIntegrityError(
                f"{path} is truncated or padded: {actual} bytes on disk, "
                f"header promises {expected} "
                f"({file_rows} x {shape[1]} {dtype.name} + {HEADER_BYTES} B header, "
                f"{actual - expected:+d} B); run `repro store verify` to diagnose"
            )
        mmap = np.memmap(
            path, dtype=dtype, mode=mode, offset=HEADER_BYTES,
            shape=(file_rows, shape[1]),
        )
        store = cls(path, mmap, header)
        if verify:
            store.verify()
        return store

    # -- integrity -----------------------------------------------------

    @property
    def checksum(self) -> str | None:
        """The header's recorded payload digest, or None when unsealed."""
        block = self.header.get("checksum")
        return None if block is None else block["digest"]

    @property
    def seal_state(self) -> str:
        """``"sealed"``, ``"unsealed"``, or ``"legacy"``.

        Sealed stores carry a digest; unsealed stores carry the explicit
        ``"checksum": null`` marker :meth:`create` writes (mid-fill, or
        a crash left them that way); legacy stores predate the
        durability layer and have no checksum key at all.
        """
        if "checksum" not in self.header:
            return "legacy"
        return "sealed" if self.header["checksum"] is not None else "unsealed"

    def verify(self) -> dict[str, object]:
        """Recompute the payload checksum against the recorded digest.

        Returns a report dict (``path``, ``nbytes``, ``algorithm``,
        ``recorded``, ``computed``, ``verified``, ``state``).  A legacy
        store (written before the durability layer, no checksum key)
        reports ``verified=False`` with ``recorded=None`` rather than
        failing; an *unsealed* store (``create``d, never sealed by
        :meth:`update_checksum` — indistinguishable from a mid-fill
        crash) raises :class:`~repro.errors.DataIntegrityError`, as does
        a digest mismatch, naming the path and both digests.
        """
        state = self.seal_state
        if state == "unsealed":
            raise DataIntegrityError(
                f"{self.path} was created but never sealed (no "
                f"update_checksum() after the final band) — a crash "
                f"mid-fill leaves exactly this state, so the contents "
                f"cannot be trusted; rebuild the store or reseal it if "
                f"the fill is known complete"
            )
        payload = _payload_view(self._map)
        recorded = self.checksum
        if recorded is None:
            computed = payload_checksum(payload)
        else:
            computed = verify_checksum(
                self.path, recorded, payload, artifact="embedding store"
            )
        return {
            "path": str(self.path),
            "nbytes": self.nbytes,
            "algorithm": CHECKSUM_ALGORITHM,
            "recorded": recorded,
            "computed": computed,
            "verified": recorded is not None,
            "state": state,
        }

    def update_checksum(self) -> str:
        """Seal a writable store: flush, recompute, and record the digest.

        The 4 KiB header region is rewritten in place (a single aligned
        write) and fsynced; the payload itself is untouched.  Returns
        the new digest.
        """
        if self._map.mode == "r":
            raise ValueError(f"embedding store {self.path} is read-only")
        self.flush()
        digest = payload_checksum(_payload_view(self._map))
        header = _build_header(
            self.shape, self.dtype, checksum=digest, capacity=self._header_capacity
        )
        with open(self.path, "r+b") as handle:
            handle.write(header)
            fsync_file(handle)
        self.header = _read_header(self.path)
        return digest

    # -- array access --------------------------------------------------

    @property
    def _map(self) -> np.memmap:
        """The *logical* rows (capacity padding excluded)."""
        if self._mmap is None:
            raise ValueError(f"embedding store {self.path} is closed")
        if self._n_rows == self._mmap.shape[0]:
            return self._mmap
        return self._mmap[: self._n_rows]

    @property
    def _header_capacity(self) -> int | None:
        """The header's capacity field (None for plain stores)."""
        capacity = self.header.get("capacity")
        return None if capacity is None else int(capacity)

    @property
    def capacity(self) -> int:
        """Row capacity of the on-disk allocation (== n_rows when plain)."""
        if self._mmap is None:
            raise ValueError(f"embedding store {self.path} is closed")
        return int(self._mmap.shape[0])

    def append_row(self, vector: np.ndarray) -> int:
        """Append one row within the preallocated capacity; return its index.

        The row is written into the already-allocated region (no file
        resize), then the 4 KiB header is rewritten in place with the
        new logical row count and the *unsealed* marker — a crash
        between the row write and the header write leaves the old row
        count (the new row is invisible), and any completed append
        leaves the store detectably unsealed until
        :meth:`update_checksum` reseals it.
        """
        if self._mmap is None:
            raise ValueError(f"embedding store {self.path} is closed")
        full = self._mmap
        if full.mode == "r":
            raise ValueError(f"embedding store {self.path} is read-only")
        if self._n_rows >= full.shape[0]:
            raise ValueError(
                f"embedding store {self.path} is full "
                f"({self._n_rows}/{full.shape[0]} rows); recreate it with a "
                f"larger capacity to admit more appends"
            )
        vector = np.asarray(vector)
        if vector.shape != (self.dim,):
            raise ValueError(
                f"append_row expects shape ({self.dim},), got {vector.shape}"
            )
        if not np.all(np.isfinite(vector)):
            raise ValueError("append_row vector contains non-finite values")
        row = self._n_rows
        full[row] = vector
        full.flush()
        header = _build_header(
            (row + 1, self.dim), self.dtype,
            checksum=None, capacity=self._header_capacity,
        )
        with open(self.path, "r+b") as handle:
            handle.write(header)
            fsync_file(handle)
        self._n_rows = row + 1
        self.header = _read_header(self.path)
        return row

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(self._map.shape)

    @property
    def dtype(self) -> np.dtype:
        return self._map.dtype

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def dim(self) -> int:
        return self.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes of embedding data on disk (header excluded)."""
        return int(self._map.nbytes)

    def __len__(self) -> int:
        return self.n_rows

    def __getitem__(self, key) -> np.ndarray:
        return self._map[key]

    def __setitem__(self, key, value) -> None:
        self._map[key] = value

    def rows(self, rows: slice) -> np.ndarray:
        """Zero-copy view of a row shard (no page is touched until read)."""
        if not isinstance(rows, slice):
            raise TypeError(f"rows() takes a slice, got {type(rows).__name__}")
        return self._map[rows]

    def row_shards(self, chunk_rows: int) -> Iterator[tuple[slice, np.ndarray]]:
        """Iterate ``(slice, view)`` row bands of ``chunk_rows`` rows."""
        from repro.utils.parallel import row_chunks

        for band in row_chunks(self.n_rows, chunk_rows):
            yield band, self.rows(band)

    def as_array(self) -> np.ndarray:
        """The whole store as one (memmap-backed) array view."""
        return self._map[:]

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Push written pages to disk (writable stores)."""
        self._map.flush()

    def close(self) -> None:
        """Drop the mapping; subsequent access raises."""
        if self._mmap is not None:
            if self._mmap.mode != "r":
                self._mmap.flush()
            self._mmap = None

    def __enter__(self) -> "EmbeddingStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._mmap is None else f"{self.shape} {self.dtype.name}"
        return f"EmbeddingStore({self.path.name}: {state})"
