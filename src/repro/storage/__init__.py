"""Out-of-core embedding storage.

Embeddings at DWY100K scale and beyond should live on disk once and be
mapped, not copied, into every process that scores them.  This package
provides the memmap-backed :class:`EmbeddingStore` used by the sharded
matching path.
"""

from repro.storage.durable import (
    CHECKSUM_ALGORITHM,
    CHECKSUM_DIGEST_SIZE,
    atomic_write,
    atomic_writer,
    fsync_dir,
    fsync_file,
    payload_checksum,
    verify_checksum,
)
from repro.storage.memmap import (
    HEADER_BYTES,
    STORE_FORMAT,
    STORE_MAGIC,
    STORE_VERSION,
    EmbeddingStore,
)

__all__ = [
    "CHECKSUM_ALGORITHM",
    "CHECKSUM_DIGEST_SIZE",
    "HEADER_BYTES",
    "STORE_FORMAT",
    "STORE_MAGIC",
    "STORE_VERSION",
    "EmbeddingStore",
    "atomic_write",
    "atomic_writer",
    "fsync_dir",
    "fsync_file",
    "payload_checksum",
    "verify_checksum",
]
