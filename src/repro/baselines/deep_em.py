"""Deep-learning entity-matching baseline (paper Section 4.3).

The paper adapts deepmatcher-style EM to EA: a neural pair classifier is
trained on the seed links (each positive paired with 10 random
negatives), and at test time every (source, candidate) pair is scored,
taking the argmax per source.  The experiment's point is *negative*:
with scarce labels, extreme class imbalance, and only embedding features
(no attribute text), "only several entities are correctly aligned".

This reimplementation is a from-scratch numpy MLP over the standard pair
representation ``[u; v; |u - v|; u * v]`` with sigmoid output and
binary cross-entropy, trained with Adam.  It is a faithful stand-in for
the deepmatcher protocol at our scale and exhibits the same failure
mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.trainer import AdamOptimizer
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class DeepEMConfig:
    """Architecture and training hyper-parameters."""

    hidden_dim: int = 64
    epochs: int = 50
    learning_rate: float = 0.005
    negatives_per_positive: int = 10
    batch_size: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_dim < 1:
            raise ValueError(f"hidden_dim must be >= 1, got {self.hidden_dim}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.negatives_per_positive < 1:
            raise ValueError(
                f"negatives_per_positive must be >= 1, got {self.negatives_per_positive}"
            )


class DeepEMBaseline:
    """Pair classifier: MLP([u; v; |u-v|; u*v]) -> match probability."""

    def __init__(self, config: DeepEMConfig | None = None, seed: RandomState = None) -> None:
        self.config = config or DeepEMConfig()
        self._seed_override = seed
        self._params: dict[str, np.ndarray] | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------

    def fit(
        self, source: np.ndarray, target: np.ndarray, seed_pairs: np.ndarray
    ) -> "DeepEMBaseline":
        """Train on seed links with 10 random negatives per positive."""
        config = self.config
        seed = self._seed_override if self._seed_override is not None else config.seed
        rng = ensure_rng(seed)
        seed_pairs = np.asarray(seed_pairs, dtype=np.int64).reshape(-1, 2)
        if len(seed_pairs) == 0:
            raise ValueError("fit requires at least one seed pair")

        positives = _pair_features(source[seed_pairs[:, 0]], target[seed_pairs[:, 1]])
        neg_src = np.repeat(seed_pairs[:, 0], config.negatives_per_positive)
        neg_tgt = rng.integers(0, target.shape[0], size=len(neg_src))
        negatives = _pair_features(source[neg_src], target[neg_tgt])
        features = np.vstack([positives, negatives])
        labels = np.concatenate([np.ones(len(positives)), np.zeros(len(negatives))])

        dim = features.shape[1]
        self._params = {
            "w1": rng.normal(0.0, np.sqrt(2.0 / dim), (dim, config.hidden_dim)),
            "b1": np.zeros(config.hidden_dim),
            "w2": rng.normal(0.0, np.sqrt(2.0 / config.hidden_dim), (config.hidden_dim, 1)),
            "b2": np.zeros(1),
        }
        optimizer = AdamOptimizer(learning_rate=config.learning_rate)
        self.loss_history = []
        for _ in range(config.epochs):
            order = rng.permutation(len(features))
            epoch_loss = 0.0
            for start in range(0, len(order), config.batch_size):
                batch = order[start:start + config.batch_size]
                loss, grads = self._loss_and_grads(features[batch], labels[batch])
                epoch_loss += loss * len(batch)
                optimizer.update(self._params, grads)
            self.loss_history.append(epoch_loss / len(features))
        return self

    # ------------------------------------------------------------------

    def predict_proba(self, source_rows: np.ndarray, target_rows: np.ndarray) -> np.ndarray:
        """Match probability for row-aligned (source, target) pairs."""
        if self._params is None:
            raise RuntimeError("DeepEMBaseline must be fitted before predicting")
        features = _pair_features(source_rows, target_rows)
        probs, _ = self._forward(features)
        return probs

    def match(self, source: np.ndarray, target: np.ndarray) -> np.ndarray:
        """deepmatcher-style inference: argmax candidate per source.

        Returns an (n_source, 2) array of matched index pairs.  Scores
        every (source, candidate) pair — the O(n^2) classifier sweep the
        paper describes.
        """
        if self._params is None:
            raise RuntimeError("DeepEMBaseline must be fitted before matching")
        n_source, n_target = source.shape[0], target.shape[0]
        best = np.empty(n_source, dtype=np.int64)
        for i in range(n_source):
            repeated = np.broadcast_to(source[i], (n_target, source.shape[1]))
            probs = self.predict_proba(np.ascontiguousarray(repeated), target)
            best[i] = int(np.argmax(probs))
        return np.stack([np.arange(n_source), best], axis=1)

    # ------------------------------------------------------------------

    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        params = self._params
        assert params is not None
        hidden_pre = features @ params["w1"] + params["b1"]
        hidden = np.maximum(hidden_pre, 0.0)
        logits = (hidden @ params["w2"] + params["b2"]).ravel()
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        cache = {"features": features, "hidden_pre": hidden_pre, "hidden": hidden}
        return probs, cache

    def _loss_and_grads(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray]]:
        params = self._params
        assert params is not None
        probs, cache = self._forward(features)
        eps = 1e-12
        loss = -float(
            np.mean(labels * np.log(probs + eps) + (1 - labels) * np.log(1 - probs + eps))
        )
        d_logits = (probs - labels)[:, None] / len(labels)
        grads = {
            "w2": cache["hidden"].T @ d_logits,
            "b2": d_logits.sum(axis=0),
        }
        d_hidden = (d_logits @ params["w2"].T) * (cache["hidden_pre"] > 0)
        grads["w1"] = cache["features"].T @ d_hidden
        grads["b1"] = d_hidden.sum(axis=0)
        return loss, grads


def _pair_features(source_rows: np.ndarray, target_rows: np.ndarray) -> np.ndarray:
    """The standard EM pair representation ``[u; v; |u-v|; u*v]``."""
    if source_rows.shape != target_rows.shape:
        raise ValueError(
            f"pair features need row-aligned inputs, got {source_rows.shape} "
            f"and {target_rows.shape}"
        )
    return np.concatenate(
        [source_rows, target_rows, np.abs(source_rows - target_rows),
         source_rows * target_rows],
        axis=1,
    )
