"""Baselines from outside the embedding-matching family.

Currently: the deep-learning entity-matching classifier the paper adapts
to EA in Section 4.3 (after deepmatcher) — included to reproduce the
paper's negative result that pair-classification EM does not transfer to
embedding-based EA.
"""

from repro.baselines.deep_em import DeepEMBaseline, DeepEMConfig

__all__ = ["DeepEMBaseline", "DeepEMConfig"]
