"""Candidate-generation configuration: how a sparse run builds its lists.

An :class:`IndexConfig` names the strategy (exact streamed top-k or the
IVF index) and its knobs; :func:`build_candidates` turns it into a
concrete :class:`~repro.index.candidates.CandidateSet` for one
(source, target) problem.  The experiment runner, the pipeline, and the
CLI all accept an ``IndexConfig`` so "run this sweep sparsely" is one
argument, not a plumbing change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.candidates import CandidateSet
from repro.index.ivf import IVFIndex
from repro.similarity.chunked import chunked_top_k

#: Candidate-generation strategies build_candidates understands.
INDEX_KINDS = ("exact", "ivf")


@dataclass(frozen=True)
class IndexConfig:
    """Knobs for sparse candidate generation.

    ``kind="exact"`` streams the true top-k per source through the
    chunked kernels (no approximation, no n x n matrix); ``kind="ivf"``
    trains an :class:`~repro.index.ivf.IVFIndex` on the targets and
    probes ``nprobe`` of its ``n_clusters`` lists per query.
    """

    kind: str = "ivf"
    #: Candidates kept per source row.
    k: int = 50
    #: Inverted lists scanned per query (ivf only).
    nprobe: int = 4
    #: Coarse-quantizer clusters (ivf only; clamped to the target count).
    n_clusters: int = 16
    #: Similarity metric override; None inherits the caller's metric.
    metric: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise ValueError(f"kind must be one of {INDEX_KINDS}, got {self.kind!r}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {self.nprobe}")
        if self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")


def build_candidates(
    source: np.ndarray,
    target: np.ndarray,
    config: IndexConfig,
    engine=None,
    metric: str = "cosine",
) -> CandidateSet:
    """Build the candidate set ``config`` describes for one problem.

    ``engine`` (a :class:`~repro.similarity.engine.SimilarityEngine`)
    is used for the exact strategy when given — its worker pool, dtype,
    and score cache all apply; without one the serial chunked kernel
    runs.  The IVF strategy trains on the *target* side, mirroring the
    blocking matcher's convention.
    """
    metric = config.metric or metric
    source = np.asarray(source)
    target = np.asarray(target)
    if config.kind == "exact":
        if engine is not None:
            return engine.top_k_candidates(source, target, config.k, metric=metric)
        indices, scores = chunked_top_k(source, target, config.k, metric=metric)
        return CandidateSet.from_topk(indices, scores, n_targets=target.shape[0])
    index = IVFIndex(
        n_clusters=min(config.n_clusters, target.shape[0]), metric=metric
    )
    index.train(target).add(target)
    return index.search(source, config.k, nprobe=config.nprobe)
