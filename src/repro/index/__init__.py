"""ANN candidate index and sparse top-k candidate sets.

The first path through the stack that never allocates an n x n matrix:

* :mod:`repro.index.candidates` — :class:`CandidateSet`, the CSR-like
  per-source top-k container the sparse matchers decode;
* :mod:`repro.index.ivf` — :class:`IVFIndex`, a from-scratch numpy IVF
  index (shared mini k-means quantizer, exact rescoring, obs
  instrumentation, JSON persistence);
* :mod:`repro.index.config` — :class:`IndexConfig` +
  :func:`build_candidates`, the one-argument handle the runner,
  pipeline, and CLI accept;
* :mod:`repro.index.blocked` — :func:`blocked_candidates`, coarse-to-
  fine candidate generation in memory-budgeted row batches (the
  out-of-core front end).
"""

from repro.index.blocked import blocked_candidates, default_clusters, default_nprobe
from repro.index.candidates import CandidateSet
from repro.index.config import INDEX_KINDS, IndexConfig, build_candidates
from repro.index.ivf import IVF_FORMAT, IVF_VERSION, IVFIndex

__all__ = [
    "CandidateSet",
    "INDEX_KINDS",
    "IndexConfig",
    "blocked_candidates",
    "build_candidates",
    "default_clusters",
    "default_nprobe",
    "IVF_FORMAT",
    "IVF_VERSION",
    "IVFIndex",
]
