"""Sparse top-k candidate sets — the n x k alternative to the n x n matrix.

Every global matcher in the paper starts from the dense pairwise score
matrix, and Table 6 shows exactly where that ends: RInf, Sinkhorn, and
Hungarian all blow past the memory budget at large scale because the
n x n working set does.  A :class:`CandidateSet` is the sparse
replacement: for each source row, the ids and scores of its top
candidates, stored CSR-style (``indptr`` / ``indices`` / ``scores``)
so rows may have different lengths (an IVF probe that comes up short
keeps what it found instead of padding).

Invariants:

* rows are sorted best-first (constructors enforce this), so the
  greedy decision for row ``i`` is its first entry;
* ``indices`` are target column ids in ``[0, n_targets)``;
* no n x n array is ever allocated by any method except
  :meth:`densify`, the explicit dense escape hatch for matchers without
  a sparse path (Hungarian, Sinkhorn) — every densify is counted on the
  ``sparse.densify`` obs metric so tests can assert the sparse path
  never fell back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics


@dataclass
class CandidateSet:
    """Per-source top-k candidate lists in CSR layout.

    ``indptr`` has ``n_sources + 1`` entries; row ``i``'s candidates are
    ``indices[indptr[i]:indptr[i+1]]`` with matching ``scores``, sorted
    by descending score.
    """

    indptr: np.ndarray
    indices: np.ndarray
    scores: np.ndarray
    n_targets: int

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise ValueError("indptr must be a 1-D array with at least one entry")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError(
                f"indptr must run from 0 to nnz={len(self.indices)}, "
                f"got [{self.indptr[0]}, {self.indptr[-1]}]"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.scores):
            raise ValueError(
                f"indices ({len(self.indices)}) and scores ({len(self.scores)}) disagree"
            )
        if self.n_targets < 0:
            raise ValueError(f"n_targets must be >= 0, got {self.n_targets}")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n_targets
        ):
            raise ValueError("candidate indices fall outside [0, n_targets)")

    # -- constructors --------------------------------------------------

    @classmethod
    def from_topk(
        cls, indices: np.ndarray, scores: np.ndarray, n_targets: int
    ) -> "CandidateSet":
        """From rectangular ``(n_source, k)`` top-k arrays (best-first),
        the output shape of :func:`~repro.similarity.chunked.chunked_top_k`."""
        indices = np.asarray(indices, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if indices.shape != scores.shape or indices.ndim != 2:
            raise ValueError(
                f"indices and scores must share a 2-D shape, got "
                f"{indices.shape} and {scores.shape}"
            )
        n_source, k = indices.shape
        indptr = np.arange(0, (n_source + 1) * k, k, dtype=np.int64)
        return cls(indptr, indices.reshape(-1), scores.reshape(-1), n_targets)

    @classmethod
    def from_rows(
        cls,
        rows: list[tuple[np.ndarray, np.ndarray]],
        n_targets: int,
    ) -> "CandidateSet":
        """From per-row ``(ids, scores)`` pairs of varying length.

        Rows are sorted best-first here, so callers (the IVF index) can
        hand over raw gathered candidates.
        """
        counts = np.array([len(ids) for ids, _ in rows], dtype=np.int64)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        scores = np.empty(int(indptr[-1]), dtype=np.float64)
        for i, (ids, row_scores) in enumerate(rows):
            order = np.argsort(-np.asarray(row_scores, dtype=np.float64), kind="stable")
            indices[indptr[i]:indptr[i + 1]] = np.asarray(ids, dtype=np.int64)[order]
            scores[indptr[i]:indptr[i + 1]] = np.asarray(row_scores, dtype=np.float64)[order]
        return cls(indptr, indices, scores, n_targets)

    @classmethod
    def vstack(cls, parts: list["CandidateSet"]) -> "CandidateSet":
        """Concatenate row-batched sets into one (same ``n_targets``).

        The assembly step of blocked candidate generation: each batch of
        source rows is searched independently, then the per-batch sets
        stack into the full set.  Row order is the concatenation order.
        """
        if not parts:
            raise ValueError("vstack needs at least one CandidateSet")
        n_targets = parts[0].n_targets
        if any(part.n_targets != n_targets for part in parts):
            raise ValueError("vstack parts must share n_targets")
        if len(parts) == 1:
            return parts[0]
        offsets = np.cumsum([0] + [part.nnz for part in parts])
        indptr = np.concatenate(
            [parts[0].indptr]
            + [part.indptr[1:] + offset for part, offset in zip(parts[1:], offsets[1:])]
        )
        indices = np.concatenate([part.indices for part in parts])
        scores = np.concatenate([part.scores for part in parts])
        return cls(indptr, indices, scores, n_targets)

    # -- shape & accounting --------------------------------------------

    @property
    def n_sources(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Stored (source, target) candidate entries."""
        return len(self.indices)

    @property
    def nbytes(self) -> int:
        """Bytes of the CSR arrays — the sparse path's working set."""
        return self.indptr.nbytes + self.indices.nbytes + self.scores.nbytes

    @property
    def row_counts(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def k_max(self) -> int:
        """Longest candidate list (0 for an empty set)."""
        counts = self.row_counts
        return int(counts.max()) if len(counts) else 0

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Row ``i``'s ``(ids, scores)``, best-first."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:stop], self.scores[start:stop]

    def row_of_entry(self) -> np.ndarray:
        """Source row id of every stored entry (the CSR expansion)."""
        return np.repeat(np.arange(self.n_sources), self.row_counts)

    # -- queries -------------------------------------------------------

    def best_per_row(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each non-empty row's best candidate: ``(rows, cols, scores)``.

        Rows are sorted best-first, so this is a gather of each row's
        first entry — the O(n) sparse greedy decision.
        """
        counts = self.row_counts
        rows = np.flatnonzero(counts > 0)
        first = self.indptr[rows]
        return rows, self.indices[first], self.scores[first]

    def contains(self, pairs: np.ndarray) -> np.ndarray:
        """Whether each (row, col) pair is among the stored candidates."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        hit = np.zeros(len(pairs), dtype=bool)
        for i, (row, col) in enumerate(pairs):
            ids, _ = self.row(int(row))
            hit[i] = bool(np.any(ids == col))
        return hit

    def recall(self, gold_pairs) -> float:
        """Fraction of gold (row, col) pairs present in the candidate lists.

        The candidate-generation quality gate: a matcher decoding this
        set can never recover a gold pair the set does not contain.
        """
        pairs = np.asarray(list(gold_pairs), dtype=np.int64).reshape(-1, 2)
        if len(pairs) == 0:
            return 0.0
        return float(self.contains(pairs).mean())

    def ranking_diagnostics(self, gold_pairs, ks: tuple[int, ...] = (1, 5, 10)) -> dict[str, float]:
        """Hits@k / MRR of the gold links *within* the candidate lists.

        The sparse analogue of
        :func:`repro.eval.metrics.ranking_diagnostics`: a gold target
        missing from its query's list counts as unranked (rank infinity).
        """
        pairs = np.asarray(list(gold_pairs), dtype=np.int64).reshape(-1, 2)
        if len(pairs) == 0:
            return {**{f"hits@{k}": 0.0 for k in ks}, "mrr": 0.0}
        ranks = np.full(len(pairs), np.inf)
        for i, (row, col) in enumerate(pairs):
            ids, row_scores = self.row(int(row))
            position = np.flatnonzero(ids == col)
            if len(position):
                gold_score = row_scores[position[0]]
                ranks[i] = float((row_scores > gold_score).sum()) + 1.0
        diagnostics = {f"hits@{k}": float((ranks <= k).mean()) for k in ks}
        diagnostics["mrr"] = float(np.where(np.isinf(ranks), 0.0, 1.0 / ranks).mean())
        return diagnostics

    def top5_std(self) -> float:
        """Mean std of each row's top-5 candidate scores (Figure 4 statistic).

        Identical to the dense statistic whenever rows hold >= 5
        candidates, because a row's top-5 candidates are its top-5
        scores.  Empty rows are skipped.
        """
        stds = [
            float(np.std(row_scores[:5]))
            for i in range(self.n_sources)
            for row_scores in (self.row(i)[1],)
            if len(row_scores)
        ]
        return float(np.mean(stds)) if stds else 0.0

    # -- the dense escape hatch ----------------------------------------

    def densify(self, fill: float | None = None) -> np.ndarray:
        """Materialise the dense ``(n_sources, n_targets)`` matrix.

        The *only* method here that allocates n x n — the fallback for
        matchers without a sparse path.  ``fill`` is the score given to
        non-candidate cells; by default one less than the worst stored
        score, so no decoder ever prefers a non-candidate.  Each call
        increments the ``sparse.densify`` obs counter, which the
        sparse-path tests pin to zero.

        Under an active supervisor budget
        (:func:`repro.runtime.budget.active_budget`), a matrix that
        would not fit raises
        :class:`~repro.errors.ResourceBudgetExceeded` *before*
        allocating — and a raw ``MemoryError`` from the allocation is
        rewrapped the same way — so the degradation ladder catches the
        breach instead of the process dying on it.
        """
        from repro.errors import ResourceBudgetExceeded
        # Function-level import: candidates sits below the runtime
        # package, whose __init__ pulls in the supervisor and, through
        # the registry, the sparse kernels that operate on this class.
        from repro.runtime.budget import active_budget

        dense_bytes = self.n_sources * self.n_targets * 8
        budget = active_budget()
        if budget is not None and dense_bytes > budget:
            raise ResourceBudgetExceeded(
                f"densify would materialise {dense_bytes} bytes "
                f"({self.n_sources} x {self.n_targets}) against a "
                f"{budget}-byte budget",
                peak_bytes=dense_bytes,
                budget_bytes=budget,
            )
        obs_metrics.get_metrics().inc("sparse.densify")
        if fill is None:
            fill = float(self.scores.min()) - 1.0 if self.nnz else 0.0
        try:
            dense = np.full((self.n_sources, self.n_targets), fill, dtype=np.float64)
        except MemoryError as error:
            raise ResourceBudgetExceeded(
                f"densify failed to allocate {dense_bytes} bytes: {error}",
                peak_bytes=dense_bytes,
            ) from error
        dense[self.row_of_entry(), self.indices] = self.scores
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CandidateSet(n_sources={self.n_sources}, n_targets={self.n_targets}, "
            f"nnz={self.nnz}, k_max={self.k_max})"
        )
