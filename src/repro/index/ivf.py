"""IVF-style approximate-nearest-neighbour candidate index (numpy-only).

The scalable candidate-generation design both benchmarking surveys rely
on: a coarse quantizer (the deterministic mini k-means shared with
embedding-space blocking, :mod:`repro.utils.kmeans`) partitions the
target vectors into inverted lists; a query scores only the vectors in
its ``nprobe`` nearest lists, with the *true* similarity metric — so the
approximation is entirely in which candidates are scanned, never in how
a scanned candidate is scored ("exact rescoring").  ``nprobe ==
n_clusters`` scans everything and recovers exact brute-force top-k, the
property the recall test suite pins.

Work per query is O(n_clusters d + scanned d); with balanced lists and
``nprobe`` fixed, the scanned set is ``~ nprobe / n_clusters`` of the
targets — the knob that trades recall for speed.

The index is observable (``index.*`` spans and counters: queries,
scanned candidates, per-row shortfalls) and persistable to a
schema-versioned JSON document (:meth:`IVFIndex.save` /
:meth:`IVFIndex.load`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import DataIntegrityError
from repro.index.candidates import CandidateSet
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.similarity.metrics import prepare_metric, rowwise_scores
from repro.storage.durable import atomic_write, payload_checksum, verify_checksum
from repro.utils.kmeans import centroid_distances, kmeans_centroids, nearest_centroid
from repro.utils.validation import check_embedding_matrix

#: Persistence format tag and version (bumped on breaking layout change).
IVF_FORMAT = "repro-ivf"
IVF_VERSION = 1


def _document_checksum(document: dict) -> str:
    """Digest of the index document's content (every key but ``checksum``)."""
    body = {key: value for key, value in document.items() if key != "checksum"}
    return payload_checksum(json.dumps(body, sort_keys=True).encode("utf-8"))


class IVFIndex:
    """Inverted-file candidate index over target embeddings.

    Lifecycle: :meth:`train` fits the coarse quantizer, :meth:`add`
    assigns vectors to inverted lists, :meth:`search` returns each
    query's exact-rescored top-k candidates as a
    :class:`~repro.index.candidates.CandidateSet`.
    """

    def __init__(
        self,
        n_clusters: int = 16,
        metric: str = "cosine",
        train_iterations: int = 8,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if train_iterations < 1:
            raise ValueError(f"train_iterations must be >= 1, got {train_iterations}")
        self.n_clusters = n_clusters
        self.metric = metric
        self.train_iterations = train_iterations
        self._centroids: np.ndarray | None = None
        self._center: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        self._assignments: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        #: Liveness per indexed position; False = tombstoned (skipped by
        #: search, kept in the lists until a re-cluster compacts them out).
        self._alive: np.ndarray | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    @property
    def ntotal(self) -> int:
        """Number of indexed positions (tombstoned ones included)."""
        return 0 if self._vectors is None else self._vectors.shape[0]

    @property
    def n_alive(self) -> int:
        """Number of live (non-tombstoned) vectors."""
        return 0 if self._alive is None else int(self._alive.sum())

    @property
    def n_tombstoned(self) -> int:
        """Number of tombstoned positions awaiting compaction."""
        return self.ntotal - self.n_alive

    @property
    def dim(self) -> int | None:
        return None if self._centroids is None else self._centroids.shape[1]

    @property
    def alive_mask(self) -> np.ndarray:
        """Read-only liveness mask over indexed positions (do not mutate)."""
        if self._alive is None:
            return np.empty(0, dtype=bool)
        return self._alive

    def reconstruct(self, positions: np.ndarray) -> np.ndarray:
        """The stored vectors at ``positions`` (a view; do not mutate)."""
        if self._vectors is None:
            raise RuntimeError("IVFIndex.reconstruct called before add()")
        return self._vectors[np.asarray(positions, dtype=np.int64)]

    def train(self, vectors: np.ndarray) -> "IVFIndex":
        """Fit the coarse quantizer on ``vectors`` (O(n d k), no n^2).

        With an event sink installed, every assignment round emits
        ``index.train.round`` (round number, points that changed
        cluster), so a multi-minute build at 100k+ vectors is no longer
        silent.  The hook never changes the fit.
        """
        vectors = check_embedding_matrix(vectors, "vectors")
        k = min(self.n_clusters, vectors.shape[0])
        obs_events.emit(
            "index.train.start",
            n=vectors.shape[0],
            clusters=k,
            iterations=self.train_iterations,
        )
        on_round = None
        if obs_events.enabled():
            iterations = self.train_iterations

            def on_round(round_index: int, moved: int) -> None:
                obs_events.emit(
                    "index.train.round",
                    round=round_index,
                    of=iterations,
                    moved=moved,
                )

        with obs_trace.span("index.train", n=vectors.shape[0], clusters=k):
            self._centroids, self._center = kmeans_centroids(
                vectors, k, iterations=self.train_iterations, on_round=on_round
            )
        self.n_clusters = k
        self._vectors = None
        self._assignments = None
        self._lists = []
        self._alive = None
        obs_events.emit("index.train.finish", clusters=k)
        return self

    def add(self, vectors: np.ndarray) -> "IVFIndex":
        """Assign ``vectors`` to inverted lists (replaces prior contents)."""
        if not self.is_trained:
            raise RuntimeError("IVFIndex.add called before train()")
        vectors = check_embedding_matrix(vectors, "vectors")
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"vector dim {vectors.shape[1]} does not match the trained "
                f"quantizer dim {self.dim}"
            )
        with obs_trace.span("index.add", n=vectors.shape[0]):
            assignments = nearest_centroid(vectors, self._centroids, self._center)
        self._vectors = vectors
        self._assignments = assignments
        self._lists = [
            np.flatnonzero(assignments == c) for c in range(self.n_clusters)
        ]
        self._alive = np.ones(vectors.shape[0], dtype=bool)
        if obs_events.enabled():
            sizes = np.array([len(lst) for lst in self._lists])
            obs_events.emit(
                "index.lists_filled",
                n=vectors.shape[0],
                lists=len(self._lists),
                min=int(sizes.min()),
                mean=float(sizes.mean()),
                max=int(sizes.max()),
                empty=int((sizes == 0).sum()),
            )
        return self

    # -- incremental updates -------------------------------------------

    def append_to_list(self, vector: np.ndarray) -> int:
        """Assign one new vector to its nearest inverted list; return its position.

        The incremental-insert primitive: no retraining, no rebuild —
        the coarse quantizer stays fixed and the vector joins the list
        whose centroid is nearest, exactly as :meth:`add` would have
        assigned it.  O(n_clusters · d) per call.  The payload arrays
        are rebound (never mutated in place), so clones sharing them
        (:meth:`clone`) are unaffected.
        """
        if self._vectors is None:
            raise RuntimeError("IVFIndex.append_to_list called before add()")
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(
                f"vector dim {vector.shape[0]} does not match the trained "
                f"quantizer dim {self.dim}"
            )
        check_embedding_matrix(vector[None, :], "vector")
        cluster = int(
            nearest_centroid(vector[None, :], self._centroids, self._center)[0]
        )
        position = self.ntotal
        self._vectors = np.concatenate([self._vectors, vector[None, :]])
        self._assignments = np.concatenate(
            [self._assignments, np.array([cluster], dtype=np.int64)]
        )
        self._lists[cluster] = np.concatenate(
            [self._lists[cluster], np.array([position], dtype=np.int64)]
        )
        self._alive = np.concatenate([self._alive, np.array([True])])
        obs_events.emit("index.append", position=position, cluster=cluster)
        return position

    def tombstone(self, position: int) -> None:
        """Mark an indexed position dead: search skips it from now on.

        The incremental-delete primitive.  The vector stays in its
        inverted list (O(1) delete); a later re-cluster compaction
        reclaims the space.  Tombstoning an already-dead position is a
        no-op.
        """
        if self._vectors is None:
            raise RuntimeError("IVFIndex.tombstone called before add()")
        if not 0 <= position < self.ntotal:
            raise ValueError(
                f"position {position} out of range for {self.ntotal} indexed vectors"
            )
        if self._alive[position]:
            self._alive[position] = False
            obs_events.emit("index.tombstone", position=position)

    def clone(self) -> "IVFIndex":
        """Copy-on-write clone for off-to-the-side compaction.

        The clone shares the (immutable-by-convention) payload arrays —
        centroids, vectors, assignments, list members — and copies only
        the outer list container and the liveness mask, so cloning is
        O(n_clusters + ntotal/8) regardless of payload size.  Mutating
        primitives (:meth:`append_to_list`, :meth:`tombstone`) rebind or
        write only clone-owned arrays, leaving the original serving
        queries untouched — the serving layer's old-or-new (never torn)
        swap relies on this.
        """
        other = IVFIndex(
            n_clusters=self.n_clusters,
            metric=self.metric,
            train_iterations=self.train_iterations,
        )
        other._centroids = self._centroids
        other._center = self._center
        other._vectors = self._vectors
        other._assignments = self._assignments
        other._lists = list(self._lists)
        other._alive = None if self._alive is None else self._alive.copy()
        return other

    # -- search --------------------------------------------------------

    def _live_members(
        self, cluster: int, exclude: np.ndarray | None
    ) -> np.ndarray:
        """Members of one inverted list that search may score."""
        members = self._lists[cluster]
        if len(members) == 0:
            return members
        keep = self._alive[members]
        if exclude is not None:
            keep = keep & ~exclude[members]
        if keep.all():
            return members
        return members[keep]

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        exclude: np.ndarray | None = None,
        stable: bool = False,
    ) -> CandidateSet:
        """Top-``k`` exact-rescored candidates per query row.

        ``nprobe`` nearest inverted lists are scanned per query; every
        scanned candidate is scored with the index's true similarity
        metric, and the best ``k`` survive.  Rows whose probed lists
        hold fewer than ``k`` vectors return what was found (a
        *shortfall*, counted on ``index.search.shortfall``).

        Tombstoned positions are never scanned.  ``exclude`` is an
        optional length-``ntotal`` boolean mask of further positions to
        skip (the serving layer masks base copies of entities that have
        a newer delta version).  ``stable=True`` switches to the
        *pair-stable* scorer (:func:`rowwise_scores`) with the total
        tie order ``(-score, position asc)`` — bitwise-reproducible
        across batch sizes, probe sets, and index rebuilds, which the
        serving equality contracts require; the default path uses the
        faster BLAS kernels whose exact float values may vary with the
        scanned block shape.
        """
        if self._vectors is None:
            raise RuntimeError("IVFIndex.search called before add()")
        queries = check_embedding_matrix(queries, "queries")
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"query dim {queries.shape[1]} does not match the trained "
                f"quantizer dim {self.dim}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        nprobe = min(nprobe, self.n_clusters)
        n_queries = queries.shape[0]
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=bool)
            if exclude.shape != (self.ntotal,):
                raise ValueError(
                    f"exclude mask must have shape ({self.ntotal},), "
                    f"got {exclude.shape}"
                )
        registry = obs_metrics.get_metrics()
        with obs_trace.span(
            "index.search", queries=n_queries, k=k, nprobe=nprobe
        ) as span:
            distances = centroid_distances(queries, self._centroids, self._center)
            if nprobe < self.n_clusters:
                probe = np.argpartition(distances, nprobe - 1, axis=1)[:, :nprobe]
            else:
                probe = np.broadcast_to(
                    np.arange(self.n_clusters), (n_queries, self.n_clusters)
                )
            probed = np.zeros((n_queries, self.n_clusters), dtype=bool)
            probed[np.arange(n_queries)[:, None], probe] = True
            live_lists = [
                self._live_members(cluster, exclude)
                for cluster in range(self.n_clusters)
            ]

            rows: list[tuple[np.ndarray, np.ndarray]]
            scanned = 0
            shortfall = 0
            if stable:
                # Query-major pair-stable scan: one rowwise kernel over
                # the concatenated probed candidates per query, selected
                # under the total order (-score, position asc).
                rows = []
                for query in range(n_queries):
                    chunks = [
                        live_lists[cluster]
                        for cluster in np.flatnonzero(probed[query])
                        if len(live_lists[cluster])
                    ]
                    if not chunks:
                        rows.append((np.empty(0, dtype=np.int64), np.empty(0)))
                        shortfall += 1
                        continue
                    ids = np.concatenate(chunks)
                    scores = rowwise_scores(
                        self.metric, queries[query], self._vectors[ids]
                    )
                    scanned += scores.size
                    if len(ids) < k:
                        shortfall += 1
                    order = np.lexsort((ids, -scores))[:k]
                    rows.append((ids[order], scores[order]))
            else:
                gathered_ids: list[list[np.ndarray]] = [[] for _ in range(n_queries)]
                gathered_scores: list[list[np.ndarray]] = [
                    [] for _ in range(n_queries)
                ]
                # Cluster-major scan: one exact-metric kernel per (querying
                # rows, inverted list) pair, never larger than |Q_c| x |L_c|.
                for cluster, members in enumerate(live_lists):
                    querying = np.flatnonzero(probed[:, cluster])
                    if len(querying) == 0 or len(members) == 0:
                        continue
                    kernel = prepare_metric(
                        self.metric, queries[querying], self._vectors[members]
                    )
                    sims = kernel(slice(0, len(querying)))
                    scanned += sims.size
                    for position, query in enumerate(querying):
                        gathered_ids[query].append(members)
                        gathered_scores[query].append(sims[position])

                rows = []
                for query in range(n_queries):
                    if not gathered_ids[query]:
                        rows.append((np.empty(0, dtype=np.int64), np.empty(0)))
                        shortfall += 1
                        continue
                    ids = np.concatenate(gathered_ids[query])
                    scores = np.concatenate(gathered_scores[query])
                    if len(ids) > k:
                        keep = np.argpartition(scores, len(scores) - k)[-k:]
                        ids, scores = ids[keep], scores[keep]
                    elif len(ids) < k:
                        shortfall += 1
                    rows.append((ids, scores))
            span.count("scanned", scanned)
            span.count("shortfall", shortfall)
        registry.inc("index.search.queries", n_queries)
        registry.inc("index.search.scanned", scanned)
        registry.inc("index.search.shortfall", shortfall)
        return CandidateSet.from_rows(rows, n_targets=self.ntotal)

    # -- reporting -----------------------------------------------------

    def live_list_sizes(self) -> np.ndarray:
        """Live (non-tombstoned) member count per inverted list."""
        return np.array(
            [
                int(self._alive[members].sum()) if len(members) else 0
                for members in self._lists
            ],
            dtype=np.int64,
        )

    def stats(self) -> dict[str, object]:
        """Structure snapshot: list-size balance and configuration.

        Sizes count *live* members only, so the balance report reflects
        what search actually scans.  Every ratio is guarded: degenerate
        shapes (untrained index, zero lists, all lists empty, everything
        tombstoned) report zeros instead of dividing by them.
        """
        sizes = self.live_list_sizes()
        populated = sizes[sizes > 0]
        populated_mean = float(populated.mean()) if len(populated) else 0.0
        return {
            "metric": self.metric,
            "n_clusters": self.n_clusters,
            "ntotal": self.ntotal,
            "alive": self.n_alive,
            "tombstones": self.n_tombstoned,
            "dim": self.dim,
            "trained": self.is_trained,
            "list_min": int(sizes.min()) if len(sizes) else 0,
            "list_mean": float(sizes.mean()) if len(sizes) else 0.0,
            "list_max": int(sizes.max()) if len(sizes) else 0,
            "empty_lists": int((sizes == 0).sum()) if len(sizes) else 0,
            "imbalance": (
                float(sizes.max() / populated_mean) if populated_mean > 0.0 else 0.0
            ),
        }

    # -- persistence ---------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the trained index (quantizer + vectors + lists) as JSON.

        The document lands through the atomic temp-file + rename
        protocol and carries a blake2b ``checksum`` over its own content
        (the canonical JSON of every key except ``checksum``), so a torn
        write never leaves a half-index and silent corruption is caught
        at :meth:`load`.
        """
        if self._vectors is None:
            raise RuntimeError("IVFIndex.save called before train()/add()")
        document = {
            "format": IVF_FORMAT,
            "version": IVF_VERSION,
            "metric": self.metric,
            "n_clusters": self.n_clusters,
            "train_iterations": self.train_iterations,
            "center": self._center.tolist(),
            "centroids": self._centroids.tolist(),
            "vectors": self._vectors.tolist(),
            "assignments": self._assignments.tolist(),
        }
        # Only written when tombstones exist, so documents from indexes
        # that never saw a delete stay byte-identical to older writers.
        if self.n_tombstoned:
            document["tombstones"] = np.flatnonzero(~self._alive).tolist()
        document["checksum"] = _document_checksum(document)
        path = Path(path)
        atomic_write(path, json.dumps(document) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "IVFIndex":
        """Reload an index written by :meth:`save`.

        Validation order: JSON well-formedness, format tag, version,
        then content checksum — version mismatches are reported as such
        even though an edited version field also invalidates the digest.
        Documents without a ``checksum`` key (pre-durability writers)
        load unverified.
        """
        path = Path(path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise DataIntegrityError(
                f"{path}: IVF index document is not valid JSON ({error}); "
                f"the file is truncated or corrupt"
            ) from error
        if not isinstance(document, dict) or document.get("format") != IVF_FORMAT:
            raise ValueError(
                f"{path} is not a {IVF_FORMAT} document "
                f"(format={document.get('format') if isinstance(document, dict) else None!r})"
            )
        if document.get("version") != IVF_VERSION:
            raise ValueError(
                f"unsupported {IVF_FORMAT} version {document.get('version')!r}; "
                f"this build reads version {IVF_VERSION}"
            )
        recorded = document.get("checksum")
        if recorded is not None:
            body = {key: value for key, value in document.items() if key != "checksum"}
            verify_checksum(
                path,
                recorded,
                json.dumps(body, sort_keys=True).encode("utf-8"),
                artifact="IVF index",
            )
        index = cls(
            n_clusters=int(document["n_clusters"]),
            metric=document["metric"],
            train_iterations=int(document["train_iterations"]),
        )
        index._centroids = np.asarray(document["centroids"], dtype=np.float64)
        index._center = np.asarray(document["center"], dtype=np.float64)
        index._vectors = np.asarray(document["vectors"], dtype=np.float64)
        index._assignments = np.asarray(document["assignments"], dtype=np.int64)
        index._lists = [
            np.flatnonzero(index._assignments == c) for c in range(index.n_clusters)
        ]
        index._alive = np.ones(index.ntotal, dtype=bool)
        tombstones = document.get("tombstones")
        if tombstones:
            positions = np.asarray(tombstones, dtype=np.int64)
            if positions.min() < 0 or positions.max() >= index.ntotal:
                raise DataIntegrityError(
                    f"{path}: tombstone positions out of range for "
                    f"{index.ntotal} indexed vectors"
                )
            index._alive[positions] = False
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IVFIndex(n_clusters={self.n_clusters}, metric={self.metric!r}, "
            f"ntotal={self.ntotal})"
        )
