"""Coarse-to-fine candidate generation for out-of-core problems.

The sharded matching path must never materialise n x n — not even
transiently inside candidate generation.  This module routes a large
(source, target) problem through the IVF coarse quantizer: the index
partitions the targets into inverted lists, and source rows are searched
in row batches sized to a memory budget, so the peak working set is the
embedding views for one batch plus that batch's probed lists — O(n k)
candidate structures total, independent of n x n.

Inputs may be in-memory arrays or memmap-backed
:class:`~repro.storage.EmbeddingStore` instances; batching slices rows,
so a store's pages are faulted in one batch at a time.

Determinism: the batch grid is a function of shape and budget only (the
planner's contract), so equal inputs and equal budgets always produce
identical candidate sets.  Across *different* budgets the candidate
identity (which ids survive per row) is invariant; the scores agree only
to floating-point roundoff, because BLAS may order the reductions
differently for different batch shapes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.index.candidates import CandidateSet
from repro.index.ivf import IVFIndex
from repro.obs import events as obs_events
from repro.obs import trace as obs_trace
from repro.utils.parallel import DEFAULT_CHUNK_ELEMS, row_chunks, rows_per_chunk


def default_clusters(n_targets: int) -> int:
    """The usual IVF sizing: ~sqrt(n) lists, clamped to [1, 4096]."""
    return max(1, min(4096, int(round(math.sqrt(max(0, n_targets))))))


def default_nprobe(n_clusters: int) -> int:
    """Probe ~1/16 of the lists, at least 4 — recall over raw speed."""
    return max(1, min(n_clusters, n_clusters // 16 + 4))


def _as_matrix(embeddings) -> np.ndarray:
    """An array view of ``embeddings`` (EmbeddingStore or array-like)."""
    if hasattr(embeddings, "as_array"):
        return embeddings.as_array()
    return np.asarray(embeddings)


def blocked_candidates(
    source,
    target,
    k: int,
    *,
    metric: str = "cosine",
    memory_budget: int | None = None,
    n_clusters: int | None = None,
    nprobe: int | None = None,
    train_iterations: int = 6,
) -> CandidateSet:
    """Top-``k`` candidate lists via IVF blocking, in budgeted row batches.

    The coarse-to-fine rung of the degradation ladder and the candidate
    front end of the scale benchmarks.  ``memory_budget`` (bytes) sizes
    the query batches; ``n_clusters`` / ``nprobe`` default to the usual
    sqrt(n) coarse sizing.  Returns the same set any batching would:
    batches only bound the working set.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    source = _as_matrix(source)
    target = _as_matrix(target)
    n_sources, n_targets = source.shape[0], target.shape[0]
    if n_clusters is None:
        n_clusters = default_clusters(n_targets)
    n_clusters = max(1, min(n_clusters, max(1, n_targets)))
    if nprobe is None:
        nprobe = default_nprobe(n_clusters)
    if n_sources == 0 or n_targets == 0:
        return CandidateSet(
            np.zeros(max(1, n_sources + 1), dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            n_targets,
        )

    with obs_trace.span(
        "index.blocked",
        rows=n_sources,
        cols=n_targets,
        k=k,
        clusters=n_clusters,
        nprobe=nprobe,
    ) as span:
        index = IVFIndex(
            n_clusters=n_clusters, metric=metric, train_iterations=train_iterations
        )
        index.train(target)
        index.add(target)

        # A batch's working set is ~rows x (centroid table + probed
        # lists); size batches so that stays within the budget.
        budget_elems = (
            max(1, memory_budget // 8) if memory_budget is not None else DEFAULT_CHUNK_ELEMS
        )
        mean_list = max(1, -(-n_targets // n_clusters))
        elems_per_row = n_clusters + 2 * nprobe * mean_list
        batch_rows = rows_per_chunk(elems_per_row, budget_elems)
        batches = row_chunks(n_sources, batch_rows)

        parts: list[CandidateSet] = []
        for rows in batches:
            part = index.search(np.asarray(source[rows]), k, nprobe=nprobe)
            parts.append(part)
            obs_events.emit(
                "index.blocked.batch",
                start=rows.start,
                stop=rows.stop,
                of=n_sources,
                nnz=part.nnz,
            )
        span.count("batches", len(batches))
    return CandidateSet.vstack(parts)
