"""Analytical memory accounting for the space-efficiency experiments.

The paper reports peak memory per matcher (Figure 5b, Table 6 "Mem.").
Measuring RSS is noisy inside a shared test process, so matchers instead
*declare* the dense matrices they materialise to a :class:`MemoryTracker`,
which tracks the peak of the declared working set.  This reproduces the
paper's qualitative ranking (SMat most space-hungry, DInf least) in a way
that is deterministic and test-friendly.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np


def matrix_bytes(*shapes: tuple[int, ...], dtype: type = np.float64) -> int:
    """Bytes needed to hold dense arrays of the given ``shapes``."""
    itemsize = np.dtype(dtype).itemsize
    return sum(int(np.prod(shape)) * itemsize for shape in shapes)


@dataclass
class MemoryTracker:
    """Tracks the peak declared working set of a matcher run.

    Matchers call :meth:`allocate` when they materialise a matrix and
    :meth:`release` when it is no longer live; :attr:`peak_bytes` is the
    maximum concurrent total.
    """

    current_bytes: int = 0
    peak_bytes: int = 0
    _live: dict[str, int] = field(default_factory=dict)

    def allocate(self, name: str, nbytes: int) -> None:
        """Declare a live allocation of ``nbytes`` under ``name``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.release(name)
        self._live[name] = nbytes
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def allocate_array(self, name: str, array: np.ndarray) -> None:
        """Declare a live numpy array allocation under ``name``."""
        self.allocate(name, array.nbytes)

    def release(self, name: str) -> None:
        """Release a previously declared allocation (no-op if unknown)."""
        nbytes = self._live.pop(name, 0)
        self.current_bytes -= nbytes

    @property
    def peak_gib(self) -> float:
        """Peak working set in GiB."""
        return self.peak_bytes / 2**30

    def fits_within(self, budget_bytes: int) -> bool:
        """Whether the run stayed within ``budget_bytes`` (Table 6 "Mem.")."""
        return self.peak_bytes <= budget_bytes


def peak_rss_bytes() -> int:
    """Measured process-lifetime peak resident set size, in bytes.

    Complements the *declared* accounting above: trackers bound what a
    matcher says it materialises; this reports what the OS actually saw.
    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; returns 0 on
    platforms without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1 if sys.platform == "darwin" else 1024
    return int(peak) * scale
