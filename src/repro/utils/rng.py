"""Deterministic random-number handling.

Every stochastic component of the library (dataset generators, embedding
trainers, the RL matcher, negative samplers) accepts either an integer seed
or a ready-made :class:`numpy.random.Generator`.  Centralising the
conversion here guarantees that two runs with the same seed produce
bit-identical benchmarks, which the reproduction experiments rely on.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted wherever the library needs randomness.
RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to a fixed default seed (the library is reproducible by
    default); an integer is used as the seed; an existing generator is
    passed through unchanged so callers can share one stream.
    """
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` independent generators.

    Used when an experiment fans out over several stochastic stages (e.g.
    KG generation, embedding noise, RL exploration) that must not share a
    stream, so that changing one stage does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
