"""Wall-clock instrumentation for the efficiency experiments.

The paper reports per-matcher running times (Figure 5, Tables 6-8).  The
:class:`Stopwatch` accumulates named phases so a matcher can report how
long it spent computing pairwise scores versus decoding the matching.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Stopwatch:
    """Accumulates wall-clock time per named phase.

    Example::

        watch = Stopwatch()
        with watch.measure("scores"):
            compute_scores()
        watch.seconds("scores")  # elapsed time
    """

    _totals: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Time the enclosed block and add it to ``phase``'s total."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[phase] = self._totals.get(phase, 0.0) + elapsed

    def seconds(self, phase: str) -> float:
        """Total seconds recorded for ``phase`` (0.0 if never measured)."""
        return self._totals.get(phase, 0.0)

    @property
    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self._totals.values())

    def as_dict(self) -> dict[str, float]:
        """Snapshot of per-phase totals."""
        return dict(self._totals)


@contextmanager
def timed() -> Iterator["_TimerResult"]:
    """Context manager yielding an object whose ``.seconds`` is set on exit.

    Example::

        with timed() as t:
            expensive()
        print(t.seconds)
    """
    result = _TimerResult()
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.seconds = time.perf_counter() - start


class _TimerResult:
    """Mutable holder filled in by :func:`timed`."""

    def __init__(self) -> None:
        self.seconds: float = 0.0
