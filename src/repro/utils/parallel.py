"""Thread-pool scheduling for row-chunked numpy kernels.

The similarity hot path is numpy/BLAS matrix algebra, which releases the
GIL, so plain threads give near-linear speedup without the pickling and
memory-duplication costs of processes.  This module centralises the
three policies every chunked kernel shares:

* :func:`resolve_workers` — how many threads a ``workers`` setting means;
* :func:`rows_per_chunk` / :func:`row_chunks` — how a row range is cut
  into independent work items (the *chunk grid*);
* :func:`map_chunks` — how the work items are scheduled.

Determinism contract: the chunk grid is a function of the problem shape
and the chunk policy only — never of the worker count.  Results are
combined in chunk order, so a kernel scheduled over 1, 2, or 4 workers
produces bitwise-identical output for the same grid.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

#: Default per-chunk working-set budget, in array *elements* (not bytes).
#: At float64 this is 32 MiB per chunk — big enough that BLAS runs at
#: full throughput, small enough that a handful of in-flight chunks fit
#: comfortably in memory alongside the output matrix.
DEFAULT_CHUNK_ELEMS = 2**22

#: How many shard working sets a memory budget must cover: the tile
#: being written, the kernel's intermediate, and headroom for a couple
#: of in-flight shards.  A fixed constant — never the worker count —
#: so the planner's grid stays independent of scheduling.
SHARD_BUDGET_FACTOR = 4

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` setting to a concrete thread count.

    ``None`` or ``0`` means "all available cores"; any positive integer
    is taken literally; negatives are rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = all cores), got {workers}")
    return int(workers)


def rows_per_chunk(
    elems_per_row: int,
    chunk_elems: int = DEFAULT_CHUNK_ELEMS,
    *,
    min_rows: int = 1,
) -> int:
    """Rows per chunk so each chunk's working set is ~``chunk_elems``.

    ``elems_per_row`` is the number of array elements one row of the
    kernel's intermediate materialises (e.g. ``n_target`` for a score
    block, ``n_target * dim`` for a broadcasted difference).  At least
    ``min_rows`` rows are always returned so progress is guaranteed.
    """
    if chunk_elems < 1:
        raise ValueError(f"chunk_elems must be >= 1, got {chunk_elems}")
    return max(min_rows, chunk_elems // max(1, elems_per_row))


def row_chunks(n_rows: int, chunk_rows: int) -> list[slice]:
    """Cut ``range(n_rows)`` into consecutive slices of ``chunk_rows``."""
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    return [
        slice(start, min(start + chunk_rows, n_rows))
        for start in range(0, n_rows, chunk_rows)
    ]


@dataclass(frozen=True)
class Shard:
    """One row x column tile of a 2-D problem.

    A shard owns a disjoint rectangle of the output, so shards can be
    scored in any order (and on any executor) without synchronisation.
    """

    rows: slice
    cols: slice

    @property
    def shape(self) -> tuple[int, int]:
        """(n_rows, n_cols) of this tile."""
        return (self.rows.stop - self.rows.start, self.cols.stop - self.cols.start)

    @property
    def elems(self) -> int:
        """Output elements this tile materialises."""
        n_rows, n_cols = self.shape
        return n_rows * n_cols


def plan_shards(
    n_rows: int,
    n_cols: int,
    *,
    chunk_rows: int | None = None,
    chunk_cols: int | None = None,
    memory_budget: int | None = None,
    itemsize: int = 8,
    chunk_elems: int = DEFAULT_CHUNK_ELEMS,
) -> list[Shard]:
    """Cut an ``n_rows x n_cols`` problem into a deterministic shard grid.

    2-D generalisation of :func:`row_chunks`: when a row band alone would
    blow the working-set budget (very wide targets), columns are split
    too.  ``memory_budget`` (bytes) caps the per-shard working set at
    ``memory_budget / SHARD_BUDGET_FACTOR``; without it the element
    budget ``chunk_elems`` applies.  Explicit ``chunk_rows`` /
    ``chunk_cols`` override the derived tile sides.

    Same determinism contract as the 1-D grid: the plan is a function of
    the problem shape and this policy only — never of worker count or
    backend — and shards are emitted in row-major order.
    """
    if n_rows < 0 or n_cols < 0:
        raise ValueError(f"shape must be non-negative, got ({n_rows}, {n_cols})")
    if memory_budget is not None:
        if memory_budget < 1:
            raise ValueError(f"memory_budget must be >= 1 byte, got {memory_budget}")
        shard_elems = max(1, memory_budget // (SHARD_BUDGET_FACTOR * max(1, itemsize)))
        shard_elems = min(shard_elems, chunk_elems)
    else:
        shard_elems = chunk_elems
    if n_rows == 0 or n_cols == 0:
        return []
    cols_per = chunk_cols if chunk_cols is not None else min(n_cols, shard_elems)
    rows_per = chunk_rows if chunk_rows is not None else max(1, shard_elems // cols_per)
    return [
        Shard(rows, cols)
        for rows in row_chunks(n_rows, rows_per)
        for cols in row_chunks(n_cols, cols_per)
    ]


def map_chunks(
    func: Callable[[_T], _R],
    items: Sequence[_T] | Iterable[_T],
    workers: int | None = 1,
    pool: ThreadPoolExecutor | None = None,
) -> list[_R]:
    """Apply ``func`` to every item, possibly across a thread pool.

    Results come back in item order regardless of scheduling, which is
    what makes worker count invisible to downstream numerics.  With one
    worker (and no external ``pool``) no pool is created at all — the
    serial path has zero threading overhead.

    ``pool`` lets a long-lived owner (the similarity engine) reuse its
    executor across calls instead of paying pool startup per call.
    """
    items = list(items)
    if pool is not None:
        return list(pool.map(func, items))
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(n_workers, len(items))) as executor:
        return list(executor.map(func, items))
