"""Deterministic mini k-means — the shared coarse quantizer.

Both sub-quadratic candidate-generation paths in this library partition
an embedding space with the same clustering primitive: embedding-space
blocking (:class:`repro.core.blocking.BlockedMatcher`) and the IVF
candidate index (:class:`repro.index.IVFIndex`).  Factoring it here
keeps the two paths bit-identical on the quantizer they share — an index
trained with ``n_clusters`` probes exactly the partition a blocked
matcher with ``num_blocks`` would have formed.

The fit is O(n d k) with no n^2 matrix, and fully deterministic:
k-means++-style greedy farthest-point seeding from a fixed start, a
fixed iteration count, and no randomness anywhere.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def kmeans_centroids(
    matrix: np.ndarray,
    k: int,
    iterations: int = 8,
    on_round: Callable[[int, int], None] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic mini k-means over centered embeddings.

    The data is centered first: embedding spaces often share a large
    common component (encoder oversmoothing) that carries no identity
    signal, and clustering the raw vectors would slice along it.
    Farthest-point seeding keeps the result deterministic and well
    spread.  Returns ``(centroids, center)``; the centroids live in the
    centered frame, so queries must be shifted by the same ``center``
    (see :func:`centroid_distances`).

    ``on_round(round_index, moved)`` is called after each assignment
    round with the 1-based round number and how many points changed
    cluster — a progress hook, so this module needs no dependency on the
    telemetry layer.  Passing it never changes the fit.
    """
    center = matrix.mean(axis=0)
    centered = matrix - center
    # Farthest-point seeding from a fixed start.
    chosen = [0]
    distances = np.linalg.norm(centered - centered[0], axis=1)
    for _ in range(1, k):
        next_idx = int(distances.argmax())
        chosen.append(next_idx)
        distances = np.minimum(
            distances, np.linalg.norm(centered - centered[next_idx], axis=1)
        )
    centroids = centered[chosen].copy()

    previous = None
    for round_index in range(iterations):
        assignment = centroid_distances(
            centered, centroids, np.zeros_like(center)
        ).argmin(axis=1)
        for b in range(k):
            members = centered[assignment == b]
            if len(members):
                centroids[b] = members.mean(axis=0)
        if on_round is not None:
            moved = (
                len(assignment)
                if previous is None
                else int(np.count_nonzero(assignment != previous))
            )
            on_round(round_index + 1, moved)
            previous = assignment
    return centroids, center


def centroid_distances(
    matrix: np.ndarray, centroids: np.ndarray, center: np.ndarray
) -> np.ndarray:
    """Squared distances to each centroid.

    ``center`` is the mean the centroids were fitted under; query rows
    are shifted by the *same* mean so both sides live in one coordinate
    frame.
    """
    data = matrix - center
    sq_data = np.sum(data**2, axis=1)[:, None]
    sq_centroids = np.sum(centroids**2, axis=1)[None, :]
    return sq_data + sq_centroids - 2.0 * (data @ centroids.T)


def nearest_centroid(
    matrix: np.ndarray, centroids: np.ndarray, center: np.ndarray
) -> np.ndarray:
    """Nearest-centroid cluster id per row of ``matrix``."""
    return centroid_distances(matrix, centroids, center).argmin(axis=1)
