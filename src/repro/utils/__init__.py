"""Shared utilities: deterministic RNG handling, timing, memory accounting.

These helpers keep every stochastic component of the library reproducible
(seeded :class:`numpy.random.Generator` everywhere, never the global state)
and provide the lightweight instrumentation used by the efficiency
experiments (Figure 5 and Table 6 of the paper).
"""

from repro.utils.memory import MemoryTracker, matrix_bytes, peak_rss_bytes
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_embedding_matrix,
    check_score_matrix,
    check_shape_compatible,
)

__all__ = [
    "MemoryTracker",
    "RandomState",
    "Stopwatch",
    "check_embedding_matrix",
    "check_score_matrix",
    "check_shape_compatible",
    "ensure_rng",
    "matrix_bytes",
    "peak_rss_bytes",
    "spawn_rngs",
    "timed",
]
