"""Input validation shared by the similarity and matching layers.

Embedding matching operates on two kinds of dense inputs — embedding
matrices and pairwise score matrices.  Validating them once at the
library boundary keeps the algorithm implementations free of repeated
shape checks and produces consistent error messages.

Non-finite failures raise :class:`~repro.errors.DataIntegrityError`
(still a ``ValueError``) and pinpoint the corruption — how many entries
are bad and where the first one sits — which is the primary debugging
breadcrumb once fault injection starts producing NaNs on purpose.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataIntegrityError


def _check_finite(array: np.ndarray, name: str) -> None:
    """Raise a located :class:`DataIntegrityError` on non-finite entries."""
    finite = np.isfinite(array)
    if finite.all():
        return
    bad = ~finite
    bad_count = int(bad.sum())
    row, col = (int(i) for i in np.unravel_index(int(np.flatnonzero(bad)[0]), array.shape))
    raise DataIntegrityError(
        f"{name} contains {bad_count} non-finite value(s) out of {array.size}; "
        f"first at (row {row}, col {col})",
        bad_count=bad_count,
        first_bad=(row, col),
    )


def check_embedding_matrix(embeddings: np.ndarray, name: str = "embeddings") -> np.ndarray:
    """Validate a 2-D float embedding matrix and return it as float64.

    Raises ``ValueError`` for wrong rank or empty dimensions and
    :class:`~repro.errors.DataIntegrityError` (a ``ValueError``
    subclass) for non-finite entries, which otherwise surface deep
    inside matrix algebra with opaque messages.
    """
    array = np.asarray(embeddings, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D (entities x dims), got shape {array.shape}")
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {array.shape}")
    _check_finite(array, name)
    return array


def check_score_matrix(scores: np.ndarray, name: str = "scores") -> np.ndarray:
    """Validate a 2-D pairwise score matrix and return it as float64."""
    array = np.asarray(scores, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D (source x target), got shape {array.shape}")
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {array.shape}")
    _check_finite(array, name)
    return array


def check_shape_compatible(source: np.ndarray, target: np.ndarray) -> None:
    """Require source/target embeddings to share the embedding dimension."""
    if source.shape[1] != target.shape[1]:
        raise ValueError(
            "source and target embeddings must share the embedding dimension, "
            f"got {source.shape[1]} and {target.shape[1]}"
        )
