"""Evaluation metrics and score-distribution analysis.

Implements the paper's metrics — precision/recall/F1 over matched pairs
(Section 4.2), Hits@k and MRR — plus the diagnostic statistics its
analysis sections use: the standard deviation of each source's top-5
similarity scores (Figure 4, Pattern 1) and hubness statistics of the
greedy matching graph (Section 3.3).
"""

from repro.eval.analysis import (
    HubnessReport,
    hubness_report,
    top_k_std,
)
from repro.eval.explain import (
    CandidateView,
    DecisionReport,
    explain_decision,
    format_report,
)
from repro.eval.metrics import (
    AlignmentMetrics,
    evaluate_pairs,
    hits_at_k,
    mean_reciprocal_rank,
    ranking_diagnostics,
)
from repro.eval.significance import (
    BootstrapInterval,
    PairedComparison,
    bootstrap_f1_interval,
    paired_bootstrap_test,
    per_query_outcomes,
)

__all__ = [
    "AlignmentMetrics",
    "BootstrapInterval",
    "PairedComparison",
    "bootstrap_f1_interval",
    "paired_bootstrap_test",
    "per_query_outcomes",
    "CandidateView",
    "DecisionReport",
    "HubnessReport",
    "explain_decision",
    "format_report",
    "evaluate_pairs",
    "hits_at_k",
    "hubness_report",
    "mean_reciprocal_rank",
    "ranking_diagnostics",
    "top_k_std",
]
