"""Alignment quality metrics (paper Section 4.2).

* *precision* — correct matches / matches found;
* *recall* — correct matches / gold matches (equals Hits@1 for greedy
  matchers under the 1-to-1 setting);
* *F1* — their harmonic mean.

Under the classic 1-to-1 setting every method answers every query, so
P = R = F1; the unmatchable and non-1-to-1 settings break that equality,
which is why the library always computes all three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class AlignmentMetrics:
    """Precision/recall/F1 of one matcher run."""

    precision: float
    recall: float
    f1: float
    num_predicted: int
    num_correct: int
    num_gold: int

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reporting."""
        return {"P": self.precision, "R": self.recall, "F1": self.f1}


def evaluate_pairs(
    predicted: Iterable[tuple[int, int]] | np.ndarray,
    gold: Iterable[tuple[int, int]] | np.ndarray,
) -> AlignmentMetrics:
    """Compare predicted (source, target) pairs against the gold links.

    Both inputs are coerced to sets of integer tuples; duplicates in
    either do not double-count.
    """
    predicted_set = _as_pair_set(predicted)
    gold_set = _as_pair_set(gold)
    correct = len(predicted_set & gold_set)
    precision = correct / len(predicted_set) if predicted_set else 0.0
    recall = correct / len(gold_set) if gold_set else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return AlignmentMetrics(
        precision=precision,
        recall=recall,
        f1=f1,
        num_predicted=len(predicted_set),
        num_correct=correct,
        num_gold=len(gold_set),
    )


def _as_pair_set(pairs: Iterable[tuple[int, int]] | np.ndarray) -> set[tuple[int, int]]:
    array = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray) else pairs)
    if array.size == 0:
        return set()
    array = array.reshape(-1, 2)
    return {(int(a), int(b)) for a, b in array}


def hits_at_k(
    scores: np.ndarray, gold_targets: np.ndarray, k: int = 1
) -> float:
    """Fraction of rows whose gold target is among the top-k scores.

    ``scores`` is (queries x candidates); ``gold_targets[i]`` is the gold
    column of row ``i``.  Hits@1 equals recall for greedy matchers.
    """
    scores = np.asarray(scores, dtype=np.float64)
    gold_targets = np.asarray(gold_targets, dtype=np.int64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    if len(gold_targets) != scores.shape[0]:
        raise ValueError(
            f"gold_targets length {len(gold_targets)} != rows {scores.shape[0]}"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if scores.shape[0] == 0:
        return 0.0
    gold_scores = scores[np.arange(scores.shape[0]), gold_targets]
    # Rank = number of strictly better candidates; ties resolve optimistically,
    # matching the common Hits@k convention.
    better = (scores > gold_scores[:, None]).sum(axis=1)
    return float((better < k).mean())


def mean_reciprocal_rank(scores: np.ndarray, gold_targets: np.ndarray) -> float:
    """MRR of the gold target under each row's score ranking."""
    scores = np.asarray(scores, dtype=np.float64)
    gold_targets = np.asarray(gold_targets, dtype=np.int64)
    if scores.shape[0] == 0:
        return 0.0
    gold_scores = scores[np.arange(scores.shape[0]), gold_targets]
    ranks = (scores > gold_scores[:, None]).sum(axis=1) + 1
    return float((1.0 / ranks).mean())


def ranking_diagnostics(
    scores: np.ndarray,
    gold_pairs: Iterable[tuple[int, int]] | np.ndarray,
    ks: tuple[int, ...] = (1, 5, 10),
) -> dict[str, float]:
    """Hits@k and MRR of the gold links under a raw score matrix.

    A property of the *embedding space* rather than any matcher: how
    retrievable the gold targets are by raw ranking.  Works with
    non-1-to-1 gold (each link scored independently against its query's
    row, so one query may contribute several links).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    pairs = np.asarray(
        list(gold_pairs) if not isinstance(gold_pairs, np.ndarray) else gold_pairs,
        dtype=np.int64,
    ).reshape(-1, 2)
    if len(pairs) == 0:
        return {**{f"hits@{k}": 0.0 for k in ks}, "mrr": 0.0}
    rows = pairs[:, 0]
    cols = pairs[:, 1]
    gold_scores = scores[rows, cols]
    better = (scores[rows] > gold_scores[:, None]).sum(axis=1)
    ranks = better + 1
    diagnostics = {f"hits@{k}": float((ranks <= k).mean()) for k in ks}
    diagnostics["mrr"] = float((1.0 / ranks).mean())
    return diagnostics
