"""Decision explainability for embedding matching.

The paper's introduction argues that the embedding-matching stage
"empowers EA with explainability, as it unveils the decision-making
process of alignment", and its Appendix D illustrates this with case
studies.  This module produces those per-decision reports: for any
query, the ranked candidate list under the raw scores, the CSLS-adjusted
view, the reciprocal ranks — and a diagnosis of *why* the naive greedy
decision differs from the advanced matchers' (hub competition, crowded
top scores, reciprocal disagreement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.csls import csls_scores
from repro.core.rinf import preference_scores, rank_matrix
from repro.utils.validation import check_score_matrix


@dataclass(frozen=True)
class CandidateView:
    """One candidate's standing in a query's decision."""

    candidate: int
    raw_score: float
    raw_rank: int
    csls_score: float
    reciprocal_rank: float
    #: How many *other* queries have this candidate as their top-1 (its
    #: hubness: the competition greedily colliding onto it).
    competing_queries: int


@dataclass(frozen=True)
class DecisionReport:
    """The full explanation of one query's matching decision."""

    query: int
    candidates: tuple[CandidateView, ...]
    #: Greedy (DInf) choice under the raw scores.
    greedy_choice: int
    #: Choice after CSLS rescaling.
    csls_choice: int
    #: Choice under reciprocal (RInf) fusion.
    reciprocal_choice: int
    #: Std of the query's top-5 raw scores (the Figure 4 statistic:
    #: low = crowded/indistinguishable candidates).
    top5_std: float
    notes: tuple[str, ...] = field(default=())

    def best(self, strategy: str = "raw") -> int:
        """Top candidate under one of the three views."""
        if strategy == "raw":
            return self.greedy_choice
        if strategy == "csls":
            return self.csls_choice
        if strategy == "reciprocal":
            return self.reciprocal_choice
        raise ValueError(f"unknown strategy {strategy!r}")


def explain_decision(
    scores: np.ndarray, query: int, top_k: int = 5, csls_k: int = 2
) -> DecisionReport:
    """Explain query ``query``'s decision over the score matrix.

    Candidates listed are the query's raw top-``top_k``; the report
    includes each one's standing under CSLS and reciprocal ranking and a
    set of human-readable notes diagnosing disagreements.  The CSLS view
    uses ``csls_k=2`` by default: with k=1 a uniform hub column penalises
    itself exactly as much as it inflates, so hub suppression only shows
    from the second neighbour on.
    """
    scores = check_score_matrix(scores)
    if not 0 <= query < scores.shape[0]:
        raise ValueError(f"query {query} out of range for {scores.shape[0]} queries")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if csls_k < 1:
        raise ValueError(f"csls_k must be >= 1, got {csls_k}")
    n_target = scores.shape[1]
    top_k = min(top_k, n_target)

    csls = csls_scores(scores, k=min(csls_k, n_target))
    p_st, p_ts = preference_scores(scores)
    r_st = rank_matrix(p_st, axis=1)
    r_ts = rank_matrix(p_ts, axis=0)
    reciprocal = (r_st + r_ts) / 2.0  # lower = better

    greedy_of = scores.argmax(axis=1)
    hub_counts = np.bincount(greedy_of, minlength=n_target)

    row = scores[query]
    order = np.argsort(-row, kind="stable")[:top_k]
    raw_ranks = {int(c): rank + 1 for rank, c in enumerate(np.argsort(-row, kind="stable"))}

    candidates = tuple(
        CandidateView(
            candidate=int(c),
            raw_score=float(row[c]),
            raw_rank=raw_ranks[int(c)],
            csls_score=float(csls[query, c]),
            reciprocal_rank=float(reciprocal[query, c]),
            competing_queries=int(hub_counts[c]) - (1 if greedy_of[query] == c else 0),
        )
        for c in order
    )

    greedy_choice = int(greedy_of[query])
    csls_choice = int(csls[query].argmax())
    reciprocal_choice = int(reciprocal[query].argmin())
    top5 = np.sort(row)[-min(5, n_target):]
    top5_std = float(top5.std()) if len(top5) > 1 else 0.0

    notes: list[str] = []
    if hub_counts[greedy_choice] > 1:
        notes.append(
            f"greedy choice {greedy_choice} is a hub: top-1 of "
            f"{int(hub_counts[greedy_choice])} queries"
        )
    if top5_std < 0.05:
        notes.append(
            f"top-5 scores are crowded (std={top5_std:.3f}); "
            "score-rescaling methods are likely to help"
        )
    if csls_choice != greedy_choice:
        notes.append(
            f"CSLS overturns the greedy choice: {greedy_choice} -> {csls_choice}"
        )
    if reciprocal_choice != greedy_choice:
        notes.append(
            "reciprocal preference disagrees with greedy: "
            f"{greedy_choice} -> {reciprocal_choice} "
            f"(candidate {greedy_choice} prefers another query)"
        )
    return DecisionReport(
        query=query,
        candidates=candidates,
        greedy_choice=greedy_choice,
        csls_choice=csls_choice,
        reciprocal_choice=reciprocal_choice,
        top5_std=top5_std,
        notes=tuple(notes),
    )


def format_report(
    report: DecisionReport,
    query_name: str | None = None,
    candidate_names: dict[int, str] | None = None,
) -> str:
    """Render a :class:`DecisionReport` as readable text."""
    names = candidate_names or {}
    header = query_name or f"query {report.query}"
    lines = [f"Decision report for {header}"]
    lines.append(
        f"  greedy -> {names.get(report.greedy_choice, report.greedy_choice)}; "
        f"CSLS -> {names.get(report.csls_choice, report.csls_choice)}; "
        f"reciprocal -> {names.get(report.reciprocal_choice, report.reciprocal_choice)}"
    )
    lines.append("  candidate            raw     rank  CSLS     recip  rivals")
    for view in report.candidates:
        label = str(names.get(view.candidate, view.candidate))
        lines.append(
            f"  {label:18s} {view.raw_score:+.3f}  #{view.raw_rank:<4d}"
            f"{view.csls_score:+.3f}  {view.reciprocal_rank:6.1f}  "
            f"{view.competing_queries}"
        )
    for note in report.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
