"""Statistical support for matcher comparisons.

An experimental study's orderings should come with uncertainty
estimates.  This module provides the two standard tools for matched
comparisons over a shared query set:

* :func:`bootstrap_f1_interval` — a percentile bootstrap confidence
  interval for one matcher's F1, resampling queries with replacement;
* :func:`paired_bootstrap_test` — a paired bootstrap comparison of two
  matchers on the *same* queries (the right test here, since both
  matchers answer the identical query set and per-query outcomes are
  strongly correlated).

Both operate on per-query correctness vectors, which
:func:`per_query_outcomes` derives from predicted pairs and gold links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def per_query_outcomes(
    predicted: Iterable[tuple[int, int]] | np.ndarray,
    gold: Iterable[tuple[int, int]] | np.ndarray,
    num_queries: int,
) -> np.ndarray:
    """Per-query correctness under 1-to-1 evaluation.

    ``outcomes[q] = 1`` iff the prediction for query ``q`` is a gold
    link.  Queries with no prediction count as incorrect.  (Under the
    1-to-1 protocol F1 equals the mean of this vector.)
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    gold_set = {(int(a), int(b)) for a, b in np.asarray(list(gold)).reshape(-1, 2)} if len(
        list(gold) if not isinstance(gold, np.ndarray) else gold
    ) else set()
    outcomes = np.zeros(num_queries, dtype=np.float64)
    predicted = np.asarray(
        list(predicted) if not isinstance(predicted, np.ndarray) else predicted
    ).reshape(-1, 2)
    for source, target in predicted:
        if (int(source), int(target)) in gold_set:
            outcomes[int(source)] = 1.0
    return outcomes


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval."""

    point: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_f1_interval(
    outcomes: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: RandomState = None,
) -> BootstrapInterval:
    """Percentile bootstrap CI for the mean of a correctness vector."""
    outcomes = np.asarray(outcomes, dtype=np.float64)
    if outcomes.ndim != 1 or len(outcomes) == 0:
        raise ValueError("outcomes must be a non-empty 1-D vector")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = ensure_rng(seed)
    n = len(outcomes)
    samples = rng.integers(0, n, size=(resamples, n))
    means = outcomes[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=float(outcomes.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired bootstrap comparison (A vs B)."""

    mean_difference: float
    #: Fraction of resamples in which A <= B — a one-sided bootstrap
    #: p-value for "A is better than B".
    p_value: float
    interval: BootstrapInterval

    @property
    def significant(self) -> bool:
        """Whether A beats B at the interval's confidence level."""
        return self.interval.lower > 0.0


def paired_bootstrap_test(
    outcomes_a: np.ndarray,
    outcomes_b: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: RandomState = None,
) -> PairedComparison:
    """Paired bootstrap comparison of two matchers on the same queries."""
    outcomes_a = np.asarray(outcomes_a, dtype=np.float64)
    outcomes_b = np.asarray(outcomes_b, dtype=np.float64)
    if outcomes_a.shape != outcomes_b.shape or outcomes_a.ndim != 1:
        raise ValueError(
            "paired comparison requires equal-length 1-D outcome vectors, got "
            f"{outcomes_a.shape} and {outcomes_b.shape}"
        )
    differences = outcomes_a - outcomes_b
    rng = ensure_rng(seed)
    n = len(differences)
    samples = rng.integers(0, n, size=(resamples, n))
    diff_means = differences[samples].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    interval = BootstrapInterval(
        point=float(differences.mean()),
        lower=float(np.quantile(diff_means, alpha)),
        upper=float(np.quantile(diff_means, 1.0 - alpha)),
        confidence=confidence,
    )
    return PairedComparison(
        mean_difference=float(differences.mean()),
        p_value=float((diff_means <= 0.0).mean()),
        interval=interval,
    )
