"""Score-distribution diagnostics used by the paper's analysis.

* :func:`top_k_std` — the average standard deviation of each source's
  top-k pairwise scores (Figure 4).  Small values mean the top scores
  crowd together — the regime where CSLS/RInf help most (Pattern 1).
* :func:`hubness_report` — statistics of the greedy matching graph:
  how concentrated the top-1 in-degree distribution is over targets
  (hubs) and how many targets are never anyone's top-1 (anti-hubs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.similarity.topk import top_k_values
from repro.utils.validation import check_score_matrix


def top_k_std(scores: np.ndarray, k: int = 5) -> float:
    """Mean per-source standard deviation of the top-``k`` scores.

    The Figure 4 statistic: low values indicate indistinguishable top
    candidates (structure-only regimes), high values indicate
    discriminative scores (name-informed regimes).
    """
    scores = check_score_matrix(scores)
    top = top_k_values(scores, k, axis=1)
    if top.shape[1] < 2:
        return 0.0
    return float(top.std(axis=1).mean())


@dataclass(frozen=True)
class HubnessReport:
    """Concentration statistics of the greedy top-1 graph."""

    #: Largest number of sources sharing one top-1 target.
    max_in_degree: int
    #: Fraction of targets that are no source's top-1 (anti-hubs).
    isolated_fraction: float
    #: Gini-style concentration of the in-degree distribution in [0, 1].
    concentration: float


def hubness_report(scores: np.ndarray) -> HubnessReport:
    """Compute :class:`HubnessReport` for a pairwise score matrix."""
    scores = check_score_matrix(scores)
    n_target = scores.shape[1]
    top1 = scores.argmax(axis=1)
    in_degree = np.bincount(top1, minlength=n_target)
    isolated = float((in_degree == 0).mean())
    concentration = _gini(in_degree.astype(np.float64))
    return HubnessReport(
        max_in_degree=int(in_degree.max()),
        isolated_fraction=isolated,
        concentration=concentration,
    )


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform)."""
    if values.sum() <= 0:
        return 0.0
    sorted_values = np.sort(values)
    n = len(sorted_values)
    cumulative = np.cumsum(sorted_values)
    return float((n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n)
