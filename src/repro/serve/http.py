"""Stdlib HTTP daemon for the online alignment service.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
no third-party framework) over a :class:`~repro.serve.state.ServingState`
and a :class:`~repro.serve.batching.MicroBatcher`:

- ``POST /query``    — ``{"vector": [...], "k": 5}`` (or ``"entity_id"``
  to query by a stored entity) → top-k matches with scores.
- ``POST /insert``   — ``{"vector": [...]}`` → assigned entity id.
- ``POST /delete``   — ``{"entity_id": 7}`` → tombstone.
- ``GET /entity/<id>/explain`` — the matching decision report for one
  entity (:func:`repro.eval.explain.explain_decision` over a probe set).
- ``GET /healthz``   — liveness + state version.
- ``GET /stats``     — index balance, delta depth, cache and batcher
  counters, process context (uptime, peak RSS), live SLO burn rates.
- ``GET /metrics``   — the full metrics registry in Prometheus text
  exposition format (:mod:`repro.obs.exposition`).

Every JSON response body is *canonical JSON* (sorted keys, no
whitespace, trailing newline), so identical state yields byte-identical
responses — the golden e2e suite and the kill-and-restart contract
depend on this.  ``/metrics`` is the one text/plain endpoint, and its
rendering is deterministic for the same reason.

Telemetry per request (:mod:`repro.serve.context`): each request gets
an id (``X-Request-Id`` in, echoed out), its handler latency lands in
the always-on ``serve.request.seconds`` histogram and the SLO tracker,
a ``serve.access`` event is emitted per completed request, and requests
over the slow threshold emit ``serve.slow`` carrying the request's
captured span tree.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.eval.explain import explain_decision
from repro.obs import events as obs_events
from repro.obs import exposition as obs_exposition
from repro.obs import metrics as obs_metrics
from repro.obs.ledger import RunLedger, build_record, fingerprint_payload
from repro.obs.slo import SLOTracker
from repro.serve import context as serve_context
from repro.serve.batching import MicroBatcher
from repro.serve.state import ServingState
from repro.similarity.engine import SimilarityEngine
from repro.utils.memory import peak_rss_bytes

#: Cap on the probe set an explain request scores (the report needs a
#: dense probe x probe matrix; this bounds it to ~EXPLAIN_LIMIT^2 pairs).
EXPLAIN_LIMIT = 64

#: Default slow-query threshold, seconds: requests over it emit a
#: ``serve.slow`` event carrying their captured span tree.
SLOW_THRESHOLD = 0.1


def canonical_json(payload: Any) -> bytes:
    """Canonical wire rendering: sorted keys, compact, one trailing LF."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


class ServeError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class AlignmentServer(ThreadingHTTPServer):
    """The daemon: serving state + engine + batcher + optional ledger."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        state: ServingState,
        engine: SimilarityEngine | None = None,
        ledger: RunLedger | None = None,
        max_batch: int = 32,
        max_wait: float = 0.002,
        slow_threshold: float = SLOW_THRESHOLD,
        slo_objective: float = 0.999,
        slo_latency_threshold: float | None = None,
        access_log: Path | str | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.state = state
        self.engine = engine if engine is not None else SimilarityEngine()
        self.ledger = ledger
        self.started = time.time()
        self.started_clock = time.perf_counter()
        self.slow_threshold = slow_threshold
        self.slo = SLOTracker(
            objective=slo_objective, latency_threshold=slo_latency_threshold
        )
        # Held directly so the hot path observes without a registry lookup.
        self.request_latency = obs_metrics.get_metrics().histogram(
            "serve.request.seconds"
        )
        self._access_sink: serve_context.AccessLogSink | None = None
        if access_log is not None:
            self._access_sink = serve_context.AccessLogSink(access_log)
            obs_events.add_sink(self._access_sink)
        self.batcher = MicroBatcher(
            self._handle_batch, max_batch=max_batch, max_wait=max_wait
        )

    def _handle_batch(self, vectors: np.ndarray, ks: list[int]) -> list:
        # Pair-stable scoring makes one batched call bitwise-equal to n
        # single calls; per-query k is honoured by slicing each row's
        # result (state.query scores once at max(k), ranks totally).
        results = self.state.query(vectors, max(ks))
        return [
            type(result)(
                entity_ids=result.entity_ids[:k],
                scores=result.scores[:k],
                version=result.version,
            )
            for result, k in zip(results, ks)
        ]

    def close(self) -> None:
        self.batcher.close()
        self.engine.close()
        if self._access_sink is not None:
            obs_events.remove_sink(self._access_sink)
            self._access_sink = None
        self.server_close()

    # -- per-request telemetry -----------------------------------------

    def observe_request(self, context: serve_context.RequestContext, status: int) -> None:
        """Account one finished request: histogram, SLO, access/slow log.

        ``/metrics`` scrapes are access-logged but kept out of the
        latency histogram and SLO accounting — they are telemetry about
        serving traffic, not serving traffic.
        """
        elapsed = time.perf_counter() - context.started
        scrape = context.path == "/metrics"
        if not scrape:
            self.request_latency.observe(elapsed)
            self.slo.record(status < 500, latency=elapsed)
        obs_events.emit(
            "serve.access",
            request_id=context.request_id,
            method=context.method,
            path=context.path,
            status=status,
            seconds=round(elapsed, 6),
        )
        if not scrape and elapsed >= self.slow_threshold:
            obs_metrics.get_metrics().inc("serve.slow_requests")
            obs_events.emit(
                "serve.slow",
                request_id=context.request_id,
                method=context.method,
                path=context.path,
                status=status,
                seconds=round(elapsed, 6),
                span=context.span_tree(),
            )

    # -- request logic (handler methods live here for testability) -----

    def handle_query(self, body: dict) -> dict:
        k = body.get("k", 5)
        if not isinstance(k, int) or k < 1:
            raise ServeError(400, f"k must be a positive integer, got {k!r}")
        vector = self._request_vector(body)
        result = self.batcher.submit(vector, k)
        payload = {
            "matches": [
                {"entity_id": int(eid), "score": float(score)}
                for eid, score in zip(result.entity_ids, result.scores)
            ],
            "k": k,
            "version": result.version,
        }
        self._record_query(k, len(payload["matches"]))
        return payload

    def handle_insert(self, body: dict) -> dict:
        vector = body.get("vector")
        if not isinstance(vector, list):
            raise ServeError(400, "insert body must carry a 'vector' list")
        entity_id = body.get("entity_id")
        if entity_id is not None and not isinstance(entity_id, int):
            raise ServeError(400, "entity_id must be an integer")
        try:
            assigned = self.state.insert(
                np.asarray(vector, dtype=np.float64), entity_id=entity_id
            )
        except ValueError as error:
            status = 507 if "full" in str(error) else 400
            raise ServeError(status, str(error)) from error
        return {"entity_id": assigned, "version": self.state.snapshot.version}

    def handle_delete(self, body: dict) -> dict:
        entity_id = body.get("entity_id")
        if not isinstance(entity_id, int):
            raise ServeError(400, "delete body must carry an integer 'entity_id'")
        deleted = self.state.delete(entity_id)
        return {
            "deleted": deleted,
            "entity_id": entity_id,
            "version": self.state.snapshot.version,
        }

    def handle_explain(self, entity_id: int) -> dict:
        snap = self.state.snapshot
        if entity_id not in snap.id_pos:
            raise ServeError(404, f"entity {entity_id} is not live")
        probe_ids = self.state.live_entity_ids()
        if len(probe_ids) > EXPLAIN_LIMIT:
            probe_ids = probe_ids[:EXPLAIN_LIMIT]
            if entity_id not in probe_ids:
                probe_ids = np.concatenate(
                    [probe_ids[:-1], np.array([entity_id], dtype=np.int64)]
                )
        positions = np.array([snap.id_pos[int(eid)] for eid in probe_ids])
        vectors = snap.index.reconstruct(positions)
        with serve_context.traced(
            "serve.explain.similarity", probes=len(probe_ids)
        ):
            scores = self.engine.similarity(
                vectors, vectors, metric=snap.index.metric
            )
        query_row = int(np.flatnonzero(probe_ids == entity_id)[0])
        report = explain_decision(scores, query_row)
        document = asdict(report)
        # Report indexes are probe-set rows; translate them to entity ids.
        translate = {i: int(eid) for i, eid in enumerate(probe_ids)}
        document["query"] = entity_id
        for key in ("greedy_choice", "csls_choice", "reciprocal_choice"):
            document[key] = translate[document[key]]
        for candidate in document["candidates"]:
            candidate["candidate"] = translate[candidate["candidate"]]
        document["candidates"] = list(document["candidates"])
        document["notes"] = list(document["notes"])
        document["probe_size"] = int(len(probe_ids))
        document["version"] = snap.version
        return document

    def handle_healthz(self) -> dict:
        return {"status": "ok", "version": self.state.snapshot.version}

    def handle_stats(self) -> dict:
        payload = dict(self.state.stats())
        payload["cache"] = {
            key: value
            for key, value in self.engine.cache_info().items()
            if isinstance(value, (int, float))
        }
        payload["batcher"] = self.batcher.stats()
        # Process-level context: how long this daemon has been up, its
        # lifetime memory high-water mark, and the serving snapshot
        # version at scrape time ("version" above, from state.stats()).
        payload["uptime_seconds"] = round(
            time.perf_counter() - self.started_clock, 3
        )
        payload["peak_rss_bytes"] = peak_rss_bytes()
        payload["slo"] = self.slo.snapshot()
        return payload

    def render_metrics(self) -> str:
        """The Prometheus exposition document for ``GET /metrics``.

        Live gauges (uptime, peak RSS, snapshot version, SLO burn
        rates) are refreshed into the registry immediately before
        rendering, so one scrape carries both the cumulative series and
        the instantaneous state.
        """
        registry = obs_metrics.get_metrics()
        registry.gauge(
            "serve.uptime_seconds", time.perf_counter() - self.started_clock
        )
        registry.gauge("process.peak_rss_bytes", peak_rss_bytes())
        registry.gauge("serve.version", self.state.snapshot.version)
        slo = self.slo.snapshot()
        for window_key, window in slo["windows"].items():
            registry.gauge(
                f"serve.slo.burn_rate.{window_key}", window["burn_rate"]
            )
        registry.gauge("serve.slo.breaching", 1.0 if slo["breaching"] else 0.0)
        return obs_exposition.render(registry)

    def _request_vector(self, body: dict) -> np.ndarray:
        vector = body.get("vector")
        if vector is not None:
            if not isinstance(vector, list):
                raise ServeError(400, "'vector' must be a JSON list of numbers")
            return np.asarray(vector, dtype=np.float64)
        entity_id = body.get("entity_id")
        if entity_id is None:
            raise ServeError(400, "query body must carry 'vector' or 'entity_id'")
        stored = self.state.get_vector(int(entity_id))
        if stored is None:
            raise ServeError(404, f"entity {entity_id} is not live")
        return stored

    def _record_query(self, k: int, returned: int) -> None:
        if self.ledger is None:
            return
        snap = self.state.snapshot
        self.ledger.append(
            build_record(
                fingerprint=fingerprint_payload(
                    {"k": k, "version": snap.version, "ntotal": snap.index.ntotal}
                ),
                preset="serve",
                regime="online",
                task="serve",
                matcher="serve.query",
                seed=0,
                scale=float(snap.index.ntotal),
                metric=snap.index.metric,
                status="ok",
                metrics={"k": float(k), "returned": float(returned)},
            )
        )


class _Handler(BaseHTTPRequestHandler):
    server: AlignmentServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_request(self, code: int | str = "-", size: int | str = "-") -> None:
        # Completed requests are covered by the richer ``serve.access``
        # event; suppressing the stdlib line avoids double-logging.
        return None

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Connection-level stdlib logging (malformed request lines,
        # early disconnects, log_error) routed into the structured
        # access log stream instead of being swallowed.
        context = serve_context.current_request()
        obs_events.emit(
            "serve.http",
            line=format % args,
            request_id=context.request_id if context is not None else None,
        )

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        context = serve_context.current_request()
        if context is not None:
            self.send_header(serve_context.REQUEST_ID_HEADER, context.request_id)
        self.end_headers()
        self.wfile.write(body)
        self._status = status
        obs_metrics.get_metrics().inc("serve.http.responses")

    def _reply(self, status: int, payload: Any) -> None:
        self._send(status, canonical_json(payload), "application/json")

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        self._send(status, text.encode("utf-8"), content_type)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError(400, "request body is empty")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(400, f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object")
        return body

    def _request_context(self) -> serve_context.RequestContext:
        raw = self.headers.get(serve_context.REQUEST_ID_HEADER, "")
        request_id = raw.strip()[: serve_context.MAX_REQUEST_ID_LEN]
        return serve_context.RequestContext(
            request_id=request_id or serve_context.new_request_id(),
            method=self.command,
            path=self.path,
        )

    def _dispatch(
        self, worker: Callable[[], Any], text_content_type: str | None = None
    ) -> None:
        context = self._request_context()
        self._status = 500  # overwritten by _send; sticks if the write dies
        with serve_context.request_scope(context):
            try:
                payload = worker()
            except ServeError as error:
                self._reply(error.status, {"error": str(error)})
            except ValueError as error:
                # Includes DataIntegrityError (a ValueError subclass).
                self._reply(400, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 - last-resort 500
                self._reply(500, {"error": f"{type(error).__name__}: {error}"})
            else:
                if text_content_type is not None:
                    self._reply_text(200, payload, text_content_type)
                else:
                    self._reply(200, payload)
            finally:
                self.server.observe_request(context, self._status)

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler convention
        if self.path == "/healthz":
            self._dispatch(self.server.handle_healthz)
        elif self.path == "/stats":
            self._dispatch(self.server.handle_stats)
        elif self.path == "/metrics":
            self._dispatch(
                self.server.render_metrics,
                text_content_type=obs_exposition.CONTENT_TYPE,
            )
        elif self.path.startswith("/entity/") and self.path.endswith("/explain"):
            middle = self.path[len("/entity/") : -len("/explain")]
            try:
                entity_id = int(middle)
            except ValueError:
                self._dispatch(self._bad_entity_id)
                return
            self._dispatch(lambda: self.server.handle_explain(entity_id))
        else:
            self._dispatch(self._unknown_path)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler convention
        routes = {
            "/query": self.server.handle_query,
            "/insert": self.server.handle_insert,
            "/delete": self.server.handle_delete,
        }
        worker = routes.get(self.path)
        if worker is None:
            self._dispatch(self._unknown_path)
            return
        self._dispatch(lambda: worker(self._read_body()))

    def _unknown_path(self) -> dict:
        raise ServeError(404, f"unknown path {self.path}")

    def _bad_entity_id(self) -> dict:
        middle = self.path[len("/entity/") : -len("/explain")]
        raise ServeError(400, f"bad entity id {middle!r}")
