"""Micro-batching for concurrent top-k queries.

Concurrent HTTP handler threads each hold one query; scoring them one
matrix at a time wastes the vectorised kernels.  The
:class:`MicroBatcher` funnels them through a single dispatcher thread
that drains whatever is queued (up to ``max_batch``, waiting at most
``max_wait`` seconds for stragglers) and hands the coalesced batch to
one handler call; each caller blocks on a future for its own slice.

Correctness note: coalescing is *safe* to expose because the serving
scorer is pair-stable (:func:`~repro.similarity.metrics.rowwise_scores`)
— a query's scores do not depend on which other queries share the
batch, so batched and unbatched responses are bitwise identical.  The
concurrency suite pins exactly that.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.serve import context as serve_context

#: Sentinel object closing the dispatcher loop.
_STOP = object()

#: Bucket upper bounds for the batch-size histogram: powers of two up
#: to 256 (``max_batch`` defaults far below that).
BATCH_SIZE_BOUNDS = tuple(2.0**i for i in range(9))

#: Per-batch observations retained for the stats distributions.  A
#: bounded window keeps /stats O(1)-memory under indefinite traffic
#: while still covering minutes of recent batches at soak rates.
OBSERVATION_WINDOW = 4096

#: The distribution points ``stats()`` reports per observed quantity.
#: Soak analysis (DESIGN.md §13) correlates response-tail spikes with
#: these: a p99 wait near ``max_wait`` means straggler-window flushes,
#: a large p99 batch size means queueing bursts.
_DIST_POINTS = (("p50", 50), ("p95", 95), ("p99", 99))


def _distribution(samples: "deque[float]") -> dict[str, float]:
    """p50/p95/p99/max summary of one bounded observation window."""
    if not samples:
        return {name: 0.0 for name, _ in _DIST_POINTS} | {"max": 0.0}
    values = np.asarray(samples, dtype=np.float64)
    summary = {
        name: float(np.percentile(values, q)) for name, q in _DIST_POINTS
    }
    summary["max"] = float(values.max())
    return summary


class MicroBatcher:
    """Coalesce concurrent ``(vector, k)`` queries into batched calls.

    ``handler(vectors, ks)`` receives a ``(batch, dim)`` float64 matrix
    and the per-query ``k`` list, and must return one result per row.
    ``submit`` blocks until the query's result (or the batch's
    exception) is available.
    """

    def __init__(
        self,
        handler: Callable[[np.ndarray, Sequence[int]], Sequence[Any]],
        max_batch: int = 32,
        max_wait: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._handler = handler
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._batches = 0
        self._queries = 0
        self._largest_batch = 0
        self._size_window: deque[float] = deque(maxlen=OBSERVATION_WINDOW)
        self._wait_window: deque[float] = deque(maxlen=OBSERVATION_WINDOW)
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # -- client side ---------------------------------------------------

    def submit(self, vector: np.ndarray, k: int, timeout: float | None = None):
        """Enqueue one query and block for its result.

        The submitter's request context (if any) rides along with the
        query: contextvars do not cross into the dispatcher thread, so
        the batcher captures it here and restores the whole batch's
        contexts around the handler call (``batch_scope``).
        """
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        future: Future = Future()
        self._queue.put(
            (np.asarray(vector, dtype=np.float64), int(k), future,
             time.monotonic(), serve_context.current_request())
        )
        return future.result(timeout=timeout)

    def stats(self) -> dict[str, Any]:
        """Dispatcher counters plus observed distributions.

        ``batch_size`` and ``wait_ms`` summarise the recent observation
        window (per dispatched batch: how many queries it coalesced and
        how long its longest-waiting query sat enqueued before the
        flush).  Exposed through the daemon's ``/stats`` so soak-report
        tail spikes can be correlated with straggler-window flushes.
        The key set is a stability contract — tests pin it.
        """
        with self._lock:
            batches, queries = self._batches, self._queries
            largest = self._largest_batch
            sizes = _distribution(self._size_window)
            waits = _distribution(self._wait_window)
        return {
            "batches": batches,
            "queries": queries,
            "largest_batch": largest,
            "mean_batch": (queries / batches) if batches else 0.0,
            "batch_size": sizes,
            "wait_ms": waits,
        }

    def close(self) -> None:
        """Stop the dispatcher; queued work is still drained first."""
        if not self._closed:
            self._closed = True
            self._queue.put(_STOP)
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dispatcher side -----------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            if self.max_batch > 1 and self.max_wait > 0:
                deadline = time.monotonic() + self.max_wait
                while len(batch) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        self._dispatch(batch)
                        return
                    batch.append(nxt)
            self._dispatch(batch)

    def _dispatch(self, batch: list) -> None:
        flushed_at = time.monotonic()
        vectors = np.stack([item[0] for item in batch])
        ks = [item[1] for item in batch]
        futures = [item[2] for item in batch]
        wait_seconds = flushed_at - min(item[3] for item in batch)
        wait_ms = wait_seconds * 1e3
        contexts = [item[4] for item in batch if item[4] is not None]
        try:
            with serve_context.batch_scope(contexts):
                with serve_context.traced(
                    "serve.batch", size=len(batch), wait_ms=round(wait_ms, 3)
                ):
                    results = self._handler(vectors, ks)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results "
                    f"for {len(batch)} queries"
                )
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            for future in futures:
                future.set_exception(error)
            return
        for future, result in zip(futures, results):
            future.set_result(result)
        with self._lock:
            self._batches += 1
            self._queries += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
            self._size_window.append(float(len(batch)))
            self._wait_window.append(wait_ms)
        registry = obs_metrics.get_metrics()
        registry.inc("serve.batches")
        registry.inc("serve.batched_queries", len(batch))
        registry.histogram("serve.batch.size", BATCH_SIZE_BOUNDS).observe(
            float(len(batch))
        )
        registry.observe("serve.batch.wait_seconds", wait_seconds)
