"""Serving state: store + IVF index behind an immutable-snapshot delta layer.

The contract this module exists to keep (DESIGN.md §12): at full
``nprobe``, a query against the live state returns *exactly* the top-k a
cold :class:`~repro.index.ivf.IVFIndex` rebuilt over the surviving
vectors would return — after any sequence of inserts, deletes, and
compactions.  Three ingredients make that bitwise-provable:

1. **Pair-stable scoring.**  Every path scores a (query, vector) pair
   with :func:`~repro.similarity.metrics.rowwise_scores`, whose value
   depends on that pair alone — never on batch shape or which other
   vectors share the scan.  (The BLAS kernels do not have this property;
   see the function's docstring.)
2. **A total tie order.**  All top-k selections — the inverted-list
   scan, the delta scan, and the final merge — break score ties by
   ascending index position.  Top-k of a union of per-part top-ks under
   a total order equals the global top-k, so merging the index part and
   the delta part loses nothing.
3. **Order-preserving compaction.**  Re-clustering renumbers positions
   but preserves their relative order, so the tie order (and therefore
   every result) is unchanged.

Concurrency: all reads go through one immutable :class:`_Snapshot`
grabbed once per query (a single attribute load — atomic in CPython);
writers build a *new* snapshot off to the side (the index is cloned
copy-on-write) and publish it with one reference assignment under a
writer lock.  A query that started before a write completes sees the old
snapshot in full; one that starts after sees the new one in full; no
query ever sees a torn blend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.index.ivf import IVFIndex
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve import context as serve_context
from repro.similarity.metrics import rowwise_scores
from repro.storage.memmap import EmbeddingStore


@dataclass(frozen=True)
class _Snapshot:
    """One immutable, internally-consistent view of the serving state.

    ``index`` holds base *and* delta vectors (inserts are appended to
    their nearest inverted list immediately); ``delta_mask`` marks the
    positions still in the delta layer — the index scan excludes them
    and the brute-force delta scan covers them, so fresh inserts are
    visible at any ``nprobe`` and nothing is scanned twice.
    """

    index: IVFIndex
    #: position -> entity id (grows with appends; rebuilt at compaction).
    pos_ids: np.ndarray
    #: entity id -> live position (dead ids absent).
    id_pos: dict[int, int]
    #: positions currently in the delta layer (excluded from IVF scan).
    delta_positions: np.ndarray
    #: monotone state version: bumped by every published mutation.
    version: int
    #: how many re-cluster compactions have run.
    compactions: int

    @property
    def delta_mask(self) -> np.ndarray | None:
        if len(self.delta_positions) == 0:
            return None
        mask = np.zeros(self.index.ntotal, dtype=bool)
        mask[self.delta_positions] = True
        return mask

    @property
    def live_delta_positions(self) -> np.ndarray:
        """Delta positions that have not been tombstoned since insert."""
        if len(self.delta_positions) == 0:
            return self.delta_positions
        alive = self.index.alive_mask
        return self.delta_positions[alive[self.delta_positions]]


@dataclass(frozen=True)
class QueryResult:
    """Top-k matches for one query vector against one snapshot."""

    entity_ids: np.ndarray
    scores: np.ndarray
    version: int


class ServingState:
    """The mutable façade over immutable snapshots.

    ``insert`` appends the vector to the store (durable, within its
    preallocated capacity) and to the index's nearest inverted list,
    and marks the position as delta; ``delete`` tombstones; ``query``
    merges the IVF scan (delta excluded) with a brute-force scan of the
    delta layer.  Compaction triggers lazily after inserts: when any
    inverted list's live size skews past ``skew_factor`` times the mean,
    the index is re-clustered over the survivors; when the delta merely
    grows past ``max_delta``, the delta positions are migrated into
    their (already-assigned) lists without retraining.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        index: IVFIndex,
        nprobe: int | None = None,
        max_delta: int = 64,
        skew_factor: float = 3.0,
    ) -> None:
        if index.ntotal != store.n_rows:
            raise ValueError(
                f"index holds {index.ntotal} vectors but the store holds "
                f"{store.n_rows} rows; rebuild the index from this store"
            )
        if max_delta < 1:
            raise ValueError(f"max_delta must be >= 1, got {max_delta}")
        if skew_factor <= 1.0:
            raise ValueError(f"skew_factor must be > 1, got {skew_factor}")
        self.store = store
        self.nprobe = index.n_clusters if nprobe is None else int(nprobe)
        self.max_delta = max_delta
        self.skew_factor = skew_factor
        self._write_lock = threading.Lock()
        pos_ids = np.arange(index.ntotal, dtype=np.int64)
        alive = index.alive_mask
        self._snapshot = _Snapshot(
            index=index,
            pos_ids=pos_ids,
            id_pos={int(p): int(p) for p in pos_ids[alive]},
            delta_positions=np.empty(0, dtype=np.int64),
            version=0,
            compactions=0,
        )
        self._next_id = index.ntotal

    # -- constructors --------------------------------------------------

    @classmethod
    def load(
        cls,
        store_path: str | Path,
        index_path: str | Path,
        **kwargs,
    ) -> "ServingState":
        """Open the artifacts a past run persisted; zero rebuild.

        Store rows beyond the index's row count — appends persisted by
        a previous serving run whose index was never re-saved — are
        recovered into the delta layer (entity id = store row), so a
        kill/restart loses no durable insert.
        """
        store = EmbeddingStore.open(store_path, mode="r+")
        index = IVFIndex.load(index_path)
        extra = store.n_rows - index.ntotal
        if extra < 0:
            raise ValueError(
                f"index at {index_path} holds {index.ntotal} vectors but the "
                f"store at {store_path} holds only {store.n_rows} rows"
            )
        if extra == 0:
            return cls(store, index, **kwargs)
        # Durable tail: rows a previous run appended after the index was
        # saved.  Replay them through the normal insert path behind a
        # proxy whose append is a no-op (the rows are already on disk).
        tail = np.array(store.as_array()[index.ntotal :], dtype=np.float64)
        state = cls(_TailTrimmedStore(store, index.ntotal), index, **kwargs)
        for vector in tail:
            state.insert(vector)
        state.store = store
        obs_events.emit("serve.recovered", rows=extra)
        return state

    # -- reads ---------------------------------------------------------

    @property
    def snapshot(self) -> _Snapshot:
        """The current immutable snapshot (grab once, use throughout)."""
        return self._snapshot

    def query(
        self, vectors: np.ndarray, k: int, nprobe: int | None = None
    ) -> list[QueryResult]:
        """Top-``k`` live entities per query row, against one snapshot.

        The result order is the total order ``(-score, position asc)``;
        at ``nprobe == n_clusters`` it is bitwise-identical to a cold
        rebuild over the survivors (the module contract).
        """
        snap = self._snapshot
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nprobe = self.nprobe if nprobe is None else nprobe
        index = snap.index
        delta = snap.live_delta_positions
        registry = obs_metrics.get_metrics()
        with serve_context.traced(
            "serve.query",
            queries=vectors.shape[0],
            k=k,
            delta=len(delta),
            version=snap.version,
        ), obs_trace.span(
            "serve.query", queries=vectors.shape[0], k=k, delta=len(delta)
        ):
            base = index.search(
                vectors, k, nprobe=nprobe, exclude=snap.delta_mask, stable=True
            )
            delta_vectors = index.reconstruct(delta) if len(delta) else None
            results: list[QueryResult] = []
            for row in range(vectors.shape[0]):
                ids, scores = base.row(row)
                if delta_vectors is not None:
                    d_scores = rowwise_scores(
                        index.metric, vectors[row], delta_vectors
                    )
                    keep = np.lexsort((delta, -d_scores))[:k]
                    ids = np.concatenate([ids, delta[keep]])
                    scores = np.concatenate([scores, d_scores[keep]])
                    order = np.lexsort((ids, -scores))[:k]
                    ids, scores = ids[order], scores[order]
                results.append(
                    QueryResult(
                        entity_ids=snap.pos_ids[ids],
                        scores=scores,
                        version=snap.version,
                    )
                )
        registry.inc("serve.queries", vectors.shape[0])
        return results

    def get_vector(self, entity_id: int) -> np.ndarray | None:
        """The live vector for ``entity_id``, or None if absent/deleted."""
        snap = self._snapshot
        position = snap.id_pos.get(int(entity_id))
        if position is None:
            return None
        return np.array(snap.index.reconstruct(np.array([position]))[0])

    def live_entity_ids(self) -> np.ndarray:
        """All live entity ids, ascending."""
        snap = self._snapshot
        return np.array(sorted(snap.id_pos), dtype=np.int64)

    # -- writes --------------------------------------------------------

    def insert(self, vector: np.ndarray, entity_id: int | None = None) -> int:
        """Admit one vector; returns its entity id.

        The vector lands durably in the store (``append_row``), then in
        a new snapshot: appended to its nearest inverted list and marked
        as delta so every query sees it immediately regardless of
        ``nprobe``.  ``entity_id`` defaults to the next server-assigned
        id (== its store row); passing an unused id pins it, passing a
        live id replaces that entity (the old position is tombstoned).
        """
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        with self._write_lock:
            snap = self._snapshot
            if entity_id is None:
                entity_id = self._next_id
            entity_id = int(entity_id)
            self.store.append_row(vector.astype(self.store.dtype, copy=False))
            index = snap.index.clone()
            replaced = snap.id_pos.get(entity_id)
            if replaced is not None:
                index.tombstone(replaced)
            position = index.append_to_list(vector)
            id_pos = dict(snap.id_pos)
            id_pos[entity_id] = position
            new = _Snapshot(
                index=index,
                pos_ids=np.concatenate(
                    [snap.pos_ids, np.array([entity_id], dtype=np.int64)]
                ),
                id_pos=id_pos,
                delta_positions=np.concatenate(
                    [snap.delta_positions, np.array([position], dtype=np.int64)]
                ),
                version=snap.version + 1,
                compactions=snap.compactions,
            )
            new = self._maybe_compact(new)
            self._snapshot = new
            self._next_id = max(self._next_id, entity_id + 1)
        obs_events.emit("serve.insert", entity_id=entity_id, version=new.version)
        obs_metrics.get_metrics().inc("serve.inserts")
        return entity_id

    def delete(self, entity_id: int) -> bool:
        """Tombstone one live entity; returns False if it was not live."""
        entity_id = int(entity_id)
        with self._write_lock:
            snap = self._snapshot
            position = snap.id_pos.get(entity_id)
            if position is None:
                return False
            index = snap.index.clone()
            index.tombstone(position)
            id_pos = dict(snap.id_pos)
            del id_pos[entity_id]
            new = _Snapshot(
                index=index,
                pos_ids=snap.pos_ids,
                id_pos=id_pos,
                delta_positions=snap.delta_positions,
                version=snap.version + 1,
                compactions=snap.compactions,
            )
            self._snapshot = new
        obs_events.emit("serve.delete", entity_id=entity_id, version=new.version)
        obs_metrics.get_metrics().inc("serve.deletes")
        return True

    def compact(self, recluster: bool = True) -> bool:
        """Force a compaction now; returns False when nothing to do."""
        with self._write_lock:
            snap = self._snapshot
            if len(snap.delta_positions) == 0 and snap.index.n_tombstoned == 0:
                return False
            new = (
                self._recluster(snap) if recluster else self._migrate_delta(snap)
            )
            self._snapshot = new
        return True

    # -- compaction ----------------------------------------------------

    def _maybe_compact(self, snap: _Snapshot) -> _Snapshot:
        """Apply the lazy compaction policy to a candidate snapshot.

        Skew — some inverted list grew past ``skew_factor`` x the mean
        live list size — triggers a full re-cluster; a merely deep delta
        migrates into the (already-assigned) lists without retraining.
        Both preserve relative position order, so results are unchanged
        at full ``nprobe``.
        """
        sizes = snap.index.live_list_sizes()
        populated = sizes[sizes > 0]
        if len(populated) and sizes.max() > self.skew_factor * populated.mean():
            return self._recluster(snap)
        if len(snap.delta_positions) >= self.max_delta:
            return self._migrate_delta(snap)
        return snap

    def _migrate_delta(self, snap: _Snapshot) -> _Snapshot:
        """Append compaction: absorb the delta into the inverted lists.

        The vectors are already in their nearest lists (inserted there);
        migrating is just dropping the exclusion mask.  Scores never
        change; at partial ``nprobe`` the migrated vectors become
        probe-dependent like any other indexed vector.
        """
        new = _Snapshot(
            index=snap.index,
            pos_ids=snap.pos_ids,
            id_pos=snap.id_pos,
            delta_positions=np.empty(0, dtype=np.int64),
            version=snap.version + 1,
            compactions=snap.compactions,
        )
        obs_events.emit(
            "serve.compact", kind="migrate", absorbed=len(snap.delta_positions)
        )
        obs_metrics.get_metrics().inc("serve.compactions.migrate")
        return new

    def _recluster(self, snap: _Snapshot) -> _Snapshot:
        """Re-cluster compaction: retrain the quantizer over survivors.

        Survivors keep their relative position order, so the total tie
        order — and therefore every query result at full ``nprobe`` —
        is unchanged.  Runs off to the side on a fresh index; queries
        in flight keep the old snapshot.
        """
        old = snap.index
        alive_positions = np.flatnonzero(old.alive_mask)
        if len(alive_positions) == 0:
            return snap
        vectors = old.reconstruct(alive_positions)
        index = IVFIndex(
            n_clusters=max(old.n_clusters, 1),
            metric=old.metric,
            train_iterations=old.train_iterations,
        )
        with obs_trace.span("serve.recluster", n=len(alive_positions)):
            index.train(vectors).add(vectors)
        pos_ids = snap.pos_ids[alive_positions]
        new = _Snapshot(
            index=index,
            pos_ids=pos_ids,
            id_pos={int(eid): pos for pos, eid in enumerate(pos_ids)},
            delta_positions=np.empty(0, dtype=np.int64),
            version=snap.version + 1,
            compactions=snap.compactions + 1,
        )
        obs_events.emit(
            "serve.compact",
            kind="recluster",
            survivors=len(alive_positions),
            dropped=old.ntotal - len(alive_positions),
        )
        obs_metrics.get_metrics().inc("serve.compactions.recluster")
        return new

    # -- reporting -----------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Serving-state snapshot: index balance + delta depth + versions."""
        snap = self._snapshot
        report = snap.index.stats()
        report.update(
            {
                "delta_depth": int(len(snap.live_delta_positions)),
                "version": snap.version,
                "compactions": snap.compactions,
                "live_entities": len(snap.id_pos),
                "store_rows": self.store.n_rows,
                "store_capacity": self.store.capacity,
                "nprobe": self.nprobe,
            }
        )
        return report


class _TailTrimmedStore:
    """Open-time proxy hiding a store's recovered tail rows from __init__.

    :meth:`ServingState.load` validates the index against the *base* row
    count, then replays the durable tail through the normal insert path
    (which appends to the real store — already holding those rows — via
    this proxy's no-op append).
    """

    def __init__(self, store: EmbeddingStore, base_rows: int) -> None:
        self._store = store
        self._base_rows = base_rows
        self._seen = 0

    @property
    def n_rows(self) -> int:
        return self._base_rows

    @property
    def dtype(self):
        return self._store.dtype

    def append_row(self, vector: np.ndarray) -> int:
        # The row is already durable in the real store; just account it.
        row = self._base_rows + self._seen
        self._seen += 1
        return row

    def __getattr__(self, name):
        return getattr(self._store, name)
