"""Online alignment serving: long-lived query service over a store + index.

The batch pipelines answer "align these two KGs" once; this package
answers "what does entity X match?" on demand, under live traffic, with
incremental inserts and deletes that never force a full index rebuild
(ROADMAP item 1).  Three layers:

- :mod:`repro.serve.state` — :class:`~repro.serve.state.ServingState`:
  the memmap store + IVF index behind an immutable-snapshot delta layer
  (insert/delete/compact; queries see old or new state, never torn).
- :mod:`repro.serve.batching` — a micro-batcher coalescing concurrent
  top-k queries into one batched scoring call.
- :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer`` daemon
  (``repro serve``) exposing query/explain/healthz/stats.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.state import ServingState

__all__ = ["MicroBatcher", "ServingState"]
