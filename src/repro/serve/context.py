"""Request-scoped context: ids, span capture, and the structured access log.

Every request the daemon handles gets a :class:`RequestContext` — an id
(accepted from the ``X-Request-Id`` header or generated), the method and
path, and a private :class:`~repro.obs.trace.Span` tree.  The context
rides a :mod:`contextvars` variable while the handler thread owns the
request, so any code below the handler can stamp the current request
without threading it through every signature.

Two scopes exist because the micro-batcher crosses a thread boundary
(contextvars do not follow work onto other threads):

* :func:`request_scope` — the handler thread's own request, set around
  the whole dispatch;
* :func:`batch_scope` — the dispatcher thread's view: *every* request
  coalesced into the batch it is currently scoring.  The batcher
  captures each submitter's context at enqueue time and restores the
  set around the handler call.

:func:`traced` bridges both: it appends one timed child span to every
context in scope.  This is deliberately separate from the global
:class:`~repro.obs.trace.TraceRecorder` — per-request capture must be
always-on and cheap (a dict and two clock reads per annotated phase,
only when a context is actually in scope), whereas the recorder is a
heavyweight opt-in profiler.  The captured tree is what the slow-query
log attaches, so a tail-latency outlier arrives with its own breakdown
("batch wait 9 ms, scoring 2 ms") instead of a bare number.

The access log itself is an :class:`AccessLogSink` — an
:mod:`repro.obs.events` sink that selects the ``serve.access`` /
``serve.slow`` / ``serve.http`` events and appends each as one
*canonical JSON* line (sorted keys, compact separators), so the log is
grep-able, diffable, and machine-parseable with no framing beyond
newlines.  Stdlib-only.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence, TextIO

from repro.obs import events as obs_events
from repro.obs.trace import Span

#: The request-id header, both accepted on requests and set on responses.
REQUEST_ID_HEADER = "X-Request-Id"

#: Ceiling on a client-supplied request id; longer ids are truncated so
#: a hostile header cannot bloat the access log.
MAX_REQUEST_ID_LEN = 128


def new_request_id() -> str:
    """A fresh 16-hex-char request id (uuid4-derived, collision-safe)."""
    return uuid.uuid4().hex[:16]


@dataclass
class RequestContext:
    """One in-flight request: identity plus a private trace-span tree."""

    request_id: str
    method: str = ""
    path: str = ""
    #: Root of the per-request span tree; :func:`traced` appends children.
    span: Span = field(default_factory=lambda: Span(name="serve.request"))
    #: ``time.perf_counter()`` at dispatch start.
    started: float = field(default_factory=time.perf_counter)

    def span_tree(self) -> dict[str, Any]:
        """JSON-ready rendering of the captured spans (slow-log payload)."""
        return self.span.as_dict()


_current: ContextVar[RequestContext | None] = ContextVar(
    "repro_serve_request", default=None
)
_batch: ContextVar[tuple[RequestContext, ...]] = ContextVar(
    "repro_serve_batch", default=()
)
#: The stack of :func:`traced` spans open on *this* thread — nested
#: traced() calls attach to their enclosing span instead of the
#: context roots, so the captured tree reflects real phase nesting.
_open_spans: ContextVar[tuple[Span, ...]] = ContextVar(
    "repro_serve_open_spans", default=()
)


def current_request() -> RequestContext | None:
    """The handler thread's in-flight request, if any."""
    return _current.get()


def current_batch() -> tuple[RequestContext, ...]:
    """The requests coalesced into the batch being scored, if any."""
    return _batch.get()


@contextmanager
def request_scope(context: RequestContext) -> Iterator[RequestContext]:
    """Install ``context`` as the handler thread's current request."""
    token = _current.set(context)
    try:
        yield context
    finally:
        _current.reset(token)


@contextmanager
def batch_scope(
    contexts: Sequence[RequestContext],
) -> Iterator[tuple[RequestContext, ...]]:
    """Install the batch's member contexts on the dispatcher thread."""
    token = _batch.set(tuple(contexts))
    try:
        yield _batch.get()
    finally:
        _batch.reset(token)


def _scope_contexts() -> tuple[RequestContext, ...]:
    current = _current.get()
    if current is not None:
        return (current,)
    return _batch.get()


@contextmanager
def traced(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Time the enclosed phase into every request context in scope.

    Yields the live span (annotate freely) or ``None`` when no request
    is in scope — offline callers pay one contextvar read and nothing
    else.  On the dispatcher thread the same span object is appended to
    each batched request's tree: the phase genuinely served all of them.
    """
    targets = _scope_contexts()
    if not targets:
        yield None
        return
    span = Span(name=name, attrs=dict(attrs))
    enclosing = _open_spans.get()
    token = _open_spans.set(enclosing + (span,))
    wall = time.perf_counter()
    cpu = time.process_time()
    try:
        yield span
    finally:
        span.wall_seconds = time.perf_counter() - wall
        span.cpu_seconds = time.process_time() - cpu
        _open_spans.reset(token)
        if enclosing:
            # Nested phase: attach to the enclosing span (shared across
            # the same targets), not to every context root again.
            enclosing[-1].children.append(span)
        else:
            for context in targets:
                context.span.children.append(span)


class AccessLogSink(obs_events.EventSink):
    """Canonical-JSON-lines access log fed off the event stream.

    Selects the serving access events (``serve.access`` per completed
    request, ``serve.slow`` for over-threshold requests with their span
    tree, ``serve.http`` for stdlib connection-level log lines) and
    appends each as ``{"event": name, "seq": n, ...attrs}`` in canonical
    JSON — sorted keys, compact separators, one line per event.  Other
    events pass through untouched, so the sink can share the stream with
    a :class:`~repro.obs.events.HumanSink` or test sinks.
    """

    NAMES = frozenset({"serve.access", "serve.slow", "serve.http"})

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None
        self._lock = threading.Lock()

    def handle(self, event: obs_events.Event) -> None:
        if event.name not in self.NAMES:
            return
        record = {"event": event.name, "seq": event.seq, **dict(event.attrs)}
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
