"""RL-based embedding matching (paper Section 3.7, following Zeng et al.
TOIS 2021).

EA is cast as a sequence-decision problem: source entities are processed
one at a time and a learned policy picks each one's target from its
top-k candidates.  Candidate logits combine three learned feature
weights with one fixed constraint:

* **affinity** — the raw pairwise score (standardised per candidate set);
* **margin** — the gap to the source's best option (how decisive the
  raw scores are);
* **coherence** — agreement with earlier decisions of closely-related
  sources (related sources should pick related targets);
* **exclusiveness** (fixed penalty, not learned) — already-taken targets
  are discouraged but not forbidden: the paper's *relaxed* 1-to-1
  constraint, and the reason RL falls below DInf under non-1-to-1
  alignment (Table 8).

Relatedness is computed from score-profile correlations, which costs the
O(n^2) space the paper attributes to RL.  A pre-filtering step accepts
confident mutual-nearest-neighbour pairs outright and excludes them from
the sequential phase — the paper's explanation of why RL runs faster on
datasets with more accurate pairwise scores.

Weights are trained with REINFORCE on the seed pairs via :meth:`fit`;
without fitting, a sensible prior policy is used.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import PipelineMatcher
from repro.utils.memory import MemoryTracker
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix

_NUM_FEATURES = 3
#: Prior policy weights over [affinity, margin, coherence]: trust the raw
#: scores, mildly reward coherence.
_DEFAULT_THETA = np.array([4.0, 2.0, 1.0])


class RLMatcher(PipelineMatcher):
    """Sequential policy matcher with coherence/exclusiveness rewards."""

    name = "RL"

    def __init__(
        self,
        top_k: int = 10,
        episodes: int = 20,
        learning_rate: float = 0.5,
        confident_margin: float = 0.15,
        relatedness_threshold: float = 0.5,
        exclusion_strength: float = 6.0,
        metric: str = "cosine",
        seed: RandomState = None,
    ) -> None:
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if episodes < 0:
            raise ValueError(f"episodes must be >= 0, got {episodes}")
        if exclusion_strength < 0:
            raise ValueError(
                f"exclusion_strength must be non-negative, got {exclusion_strength}"
            )
        super().__init__(metric=metric)
        self.top_k = top_k
        self.episodes = episodes
        self.learning_rate = learning_rate
        self.confident_margin = confident_margin
        self.relatedness_threshold = relatedness_threshold
        #: Fixed penalty applied to already-taken targets.  This is the
        #: paper's exclusiveness *constraint*: part of the environment,
        #: not a learnable preference — which is exactly why RL degrades
        #: under non-1-to-1 alignment (Table 8).
        self.exclusion_strength = exclusion_strength
        self.seed = seed
        self.theta = _DEFAULT_THETA.copy()
        #: Mean episode reward per training episode, filled by :meth:`fit`.
        self.reward_history: list[float] = []

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        source: np.ndarray,
        target: np.ndarray,
        seed_pairs: np.ndarray,
    ) -> "RLMatcher":
        """REINFORCE training of the policy weights on labelled pairs.

        ``source``/``target`` are full embedding matrices; ``seed_pairs``
        is an (n, 2) array of (source id, target id) gold training links.
        Episodes replay the sequential decision process over the seed
        sources (against the seed-target candidate pool) with reward 1
        for picking the gold target.
        """
        seed_pairs = np.asarray(seed_pairs, dtype=np.int64).reshape(-1, 2)
        if len(seed_pairs) == 0:
            raise ValueError("fit requires at least one seed pair")
        rng = ensure_rng(self.seed)
        scores = self._similarity(source[seed_pairs[:, 0]], target[seed_pairs[:, 1]])
        gold = np.arange(len(seed_pairs))  # row i's gold target is column i
        relatedness, target_affinity = _profile_similarities(scores)
        self.reward_history = []
        baseline = 0.0
        for _ in range(self.episodes):
            order = rng.permutation(len(gold))
            grad = np.zeros(_NUM_FEATURES)
            total_reward = 0.0
            used = np.zeros(scores.shape[1], dtype=bool)
            matched_sources: list[int] = []
            matched_targets: list[int] = []
            for src in order:
                candidates, features, taken = self._candidate_features(
                    scores, src, used, matched_sources, matched_targets,
                    relatedness, target_affinity,
                )
                logits = features @ self.theta - self.exclusion_strength * taken
                logits -= logits.max()
                probs = np.exp(logits)
                probs /= probs.sum()
                choice = rng.choice(len(candidates), p=probs)
                picked = candidates[choice]
                reward = 1.0 if picked == gold[src] else 0.0
                total_reward += reward
                # REINFORCE: (r - b) * d log pi / d theta
                grad += (reward - baseline) * (features[choice] - probs @ features)
                used[picked] = True
                matched_sources.append(int(src))
                matched_targets.append(int(picked))
            mean_reward = total_reward / len(gold)
            self.reward_history.append(mean_reward)
            baseline = 0.9 * baseline + 0.1 * mean_reward
            self.theta += self.learning_rate * grad / len(gold)
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        scores = check_score_matrix(scores)
        n_source, n_target = scores.shape
        # Profile-correlation matrices (float32): the O(n^2) working set of RL.
        memory.allocate("relatedness", n_source * n_source * 4 + n_target * n_target * 4)
        relatedness, target_affinity = _profile_similarities(scores)

        used = np.zeros(n_target, dtype=bool)
        assigned = np.full(n_source, -1, dtype=np.int64)

        with watch.measure("prefilter"):
            confident = self._confident_pairs(scores)
        for src, tgt in confident:
            assigned[src] = tgt
            used[tgt] = True
        matched_sources = [int(s) for s, _ in confident]
        matched_targets = [int(t) for _, t in confident]

        remaining = np.flatnonzero(assigned < 0)
        # Most decisive sources first, so early (likely-correct) decisions
        # constrain later ambiguous ones.
        remaining = remaining[np.argsort(-scores[remaining].max(axis=1), kind="stable")]
        for src in remaining:
            candidates, features, taken = self._candidate_features(
                scores, int(src), used, matched_sources, matched_targets,
                relatedness, target_affinity,
            )
            logits = features @ self.theta - self.exclusion_strength * taken
            picked = candidates[int(np.argmax(logits))]
            assigned[src] = picked
            used[picked] = True
            matched_sources.append(int(src))
            matched_targets.append(int(picked))

        memory.release("relatedness")
        rows = np.arange(n_source)
        pairs = np.stack([rows, assigned], axis=1)
        return pairs, scores[rows, assigned]

    # ------------------------------------------------------------------

    def _confident_pairs(self, scores: np.ndarray) -> np.ndarray:
        """Mutual nearest neighbours whose margin exceeds the threshold."""
        forward = scores.argmax(axis=1)
        backward = scores.argmax(axis=0)
        rows = np.arange(scores.shape[0])
        mutual = backward[forward] == rows
        top = scores[rows, forward]
        if scores.shape[1] > 1:
            partition = np.partition(scores, scores.shape[1] - 2, axis=1)
            second = partition[:, -2]
        else:
            second = np.full(scores.shape[0], -np.inf)
        decisive = (top - second) > self.confident_margin
        keep = mutual & decisive
        return np.stack([rows[keep], forward[keep]], axis=1)

    def _candidate_features(
        self,
        scores: np.ndarray,
        src: int,
        used: np.ndarray,
        matched_sources: list[int],
        matched_targets: list[int],
        relatedness: np.ndarray,
        target_affinity: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-k candidates of ``src``, their policy features, and the
        taken-flags consumed by the fixed exclusiveness penalty."""
        row = scores[src]
        k = min(self.top_k, scores.shape[1])
        candidates = np.argpartition(row, scores.shape[1] - k)[-k:]
        affinity = row[candidates]
        # Standardise within the candidate set: weak encoders compress all
        # similarities into a narrow band, and without normalisation the
        # affinity signal would vanish against the other features.
        spread = affinity.std()
        if spread > 1e-12:
            affinity = (affinity - affinity.mean()) / spread
        else:
            affinity = np.zeros_like(affinity)
        margin = affinity - affinity.max()
        taken = used[candidates].astype(np.float64)
        coherence = np.zeros(len(candidates))
        if matched_sources:
            related = relatedness[src, matched_sources]
            strong = related > self.relatedness_threshold
            if strong.any():
                weights = related[strong]
                partner_targets = np.asarray(matched_targets, dtype=np.int64)[strong]
                coherence = weights @ target_affinity[np.ix_(partner_targets, candidates)]
                coherence /= weights.sum()
        features = np.stack([affinity, margin, coherence], axis=1)
        return candidates, features, taken


def _profile_similarities(scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cosine similarity of score profiles.

    Sources with similar rows rate targets alike ("related"); targets
    with similar columns attract the same sources ("affine").  These are
    the relatedness signals the coherence feature uses.  Kept in float32:
    coherence is a soft feature, and halving the O(n^2) working set is
    what lets RL scale to the large datasets (paper Table 6).
    """
    row_norm = (
        scores / np.maximum(np.linalg.norm(scores, axis=1, keepdims=True), 1e-12)
    ).astype(np.float32)
    col_norm = (
        scores / np.maximum(np.linalg.norm(scores, axis=0, keepdims=True), 1e-12)
    ).astype(np.float32)
    return row_norm @ row_norm.T, col_norm.T @ col_norm
