"""Algorithms for matching KGs in entity embedding spaces.

This package is the reproduction of the paper's subject matter: the
seven embedding-matching strategies of Section 3, plus the RInf
scalability variants and the dummy-node machinery of Section 5.1.  All
of them consume pairwise scores derived from unified entity embeddings
and emit matched (source, target) pairs.

Quick use::

    from repro.core import create_matcher
    result = create_matcher("CSLS").match(source_embeddings, target_embeddings)
    result.pairs        # (m, 2) matched indices
    result.seconds      # instrumented wall-clock
"""

from repro.core.base import MatchResult, Matcher, PipelineMatcher
from repro.core.blocking import BlockedMatcher
from repro.core.csls import CSLS, csls_scores
from repro.core.dummy import DummyPaddedMatcher, pad_with_dummies, strip_dummy_pairs
from repro.core.greedy import DInf, greedy_match
from repro.core.hungarian import Hungarian, solve_assignment_max, solve_assignment_min
from repro.core.multi import MultiAnswerMatcher
from repro.core.registry import (
    PAPER_MATCHERS,
    available_matchers,
    create_matcher,
    register_matcher,
)
from repro.core.rinf import (
    RInf,
    RInfPb,
    RInfWr,
    preference_scores,
    rank_matrix,
    reciprocal_rank_scores,
)
from repro.core.rl import RLMatcher
from repro.core.sinkhorn import Sinkhorn, sinkhorn_scores
from repro.core.stable import StableMatch, gale_shapley, is_stable
from repro.core.threshold import ThresholdMatcher, calibrate_threshold

__all__ = [
    "BlockedMatcher",
    "CSLS",
    "DInf",
    "DummyPaddedMatcher",
    "Hungarian",
    "MatchResult",
    "Matcher",
    "MultiAnswerMatcher",
    "PAPER_MATCHERS",
    "PipelineMatcher",
    "RInf",
    "RInfPb",
    "RInfWr",
    "RLMatcher",
    "Sinkhorn",
    "StableMatch",
    "ThresholdMatcher",
    "available_matchers",
    "calibrate_threshold",
    "create_matcher",
    "csls_scores",
    "gale_shapley",
    "greedy_match",
    "is_stable",
    "pad_with_dummies",
    "preference_scores",
    "rank_matrix",
    "reciprocal_rank_scores",
    "register_matcher",
    "sinkhorn_scores",
    "solve_assignment_max",
    "solve_assignment_min",
    "strip_dummy_pairs",
]
