"""Stable embedding matching — SMat (paper Section 3.6).

EA as the stable marriage problem: sources and targets each rank the
opposite side by pairwise score, and the Gale-Shapley deferred-acceptance
algorithm finds a matching with no *blocking pair* (two entities that
would both rather be matched to each other than to their assigned
partners).  Stability is a weaker objective than the Hungarian's
sum-maximisation — the paper finds SMat consistently a notch below Hun.
under 1-to-1 evaluation — and materialising both sides' full preference
lists makes SMat the most space-hungry algorithm in the survey.

With more sources than targets, the surplus sources exhaust their
preference lists and remain unmatched (abstention), which is how SMat
interacts with dummy-node padding under the unmatchable setting.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import PipelineMatcher
from repro.obs import metrics as obs_metrics
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix


def gale_shapley(scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Source-proposing deferred acceptance over a score matrix.

    Returns ``(pairs, pair_scores)``.  Every matched pair is stable with
    respect to ``scores``; unmatched sources (only possible when
    ``n_source > n_target``) are omitted.
    """
    scores = check_score_matrix(scores)
    n_source, n_target = scores.shape

    # Full preference lists: the O(n^2 lg n) sort and the O(n^2) memory
    # that dominate SMat's footprint.
    source_prefs = np.argsort(-scores, axis=1, kind="stable")
    # target_rank[v, u]: v's rank of source u (lower = preferred).
    target_rank = np.empty((n_target, n_source), dtype=np.int64)
    order = np.argsort(-scores.T, axis=1, kind="stable")
    ramp = np.arange(n_source)
    np.put_along_axis(target_rank, order, np.broadcast_to(ramp, (n_target, n_source)), axis=1)

    next_proposal = np.zeros(n_source, dtype=np.int64)
    engaged_to = np.full(n_target, -1, dtype=np.int64)  # target -> source
    free = list(range(n_source))
    proposals = 0

    while free:
        source = free.pop()
        while next_proposal[source] < n_target:
            target = source_prefs[source, next_proposal[source]]
            next_proposal[source] += 1
            proposals += 1
            holder = engaged_to[target]
            if holder < 0:
                engaged_to[target] = source
                break
            if target_rank[target, source] < target_rank[target, holder]:
                engaged_to[target] = source
                free.append(holder)
                break
        # else: source exhausted its list and stays unmatched.

    obs_metrics.get_metrics().inc("stable.proposals", proposals)
    matched_targets = np.flatnonzero(engaged_to >= 0)
    pairs = np.stack([engaged_to[matched_targets], matched_targets], axis=1)
    # Report in source order for readability.
    pairs = pairs[np.argsort(pairs[:, 0], kind="stable")]
    return pairs, scores[pairs[:, 0], pairs[:, 1]]


def is_stable(scores: np.ndarray, pairs: np.ndarray) -> bool:
    """Whether ``pairs`` has no blocking pair under ``scores``.

    Used by the test suite to verify the Gale-Shapley output invariant.
    """
    scores = check_score_matrix(scores)
    matched_target_of = {int(s): int(t) for s, t in pairs}
    matched_source_of = {int(t): int(s) for s, t in pairs}
    n_source, n_target = scores.shape
    for source in range(n_source):
        current = matched_target_of.get(source)
        current_score = scores[source, current] if current is not None else -np.inf
        for target in range(n_target):
            if target == current:
                continue
            if scores[source, target] <= current_score:
                continue  # source does not prefer this target
            holder = matched_source_of.get(target)
            holder_score = scores[holder, target] if holder is not None else -np.inf
            if scores[source, target] > holder_score:
                return False  # both prefer each other: blocking pair
    return True


class StableMatch(PipelineMatcher):
    """SMat: Gale-Shapley deferred acceptance over pairwise scores."""

    name = "SMat"

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        n_source, n_target = scores.shape
        # SMat's signature cost: full int64 preference lists for both
        # sides, the target-rank lookup, and the argsort buffer used to
        # build it are all live at once — the largest footprint in the
        # survey (paper Figure 5b).
        memory.allocate("preference_lists", 4 * n_source * n_target * 8)
        pairs, pair_scores = gale_shapley(scores)
        memory.release("preference_lists")
        return pairs, pair_scores
