"""Embedding matching as the linear assignment problem (paper Sec. 3.5).

``Hun.`` maximises the *sum* of pairwise similarity scores under a hard
1-to-1 constraint — the globally optimal matching when the paper's two
assumptions (isomorphic neighbourhoods, 1-to-1 gold links) hold, and the
strongest performer in the paper's main experiments.

The solver is a from-scratch Jonker-Volgenant-style shortest augmenting
path implementation (the same O(n^3) family as the lapjv code the paper
uses), with an optional scipy backend (`linear_sum_assignment`) used by
the test suite to cross-validate the native solver and available for
callers who prefer the C implementation.

Rectangular inputs are padded to square with a constant worst-case
score; assignments to padded rows/columns are dropped, so on inputs with
more sources than targets the Hungarian matcher naturally *abstains* on
the worst-fitting sources — the dummy-node mechanism the paper applies
under the unmatchable-entity setting (Section 5.1).
"""

from __future__ import annotations

import numpy as np
import scipy.optimize

from repro.core.base import PipelineMatcher
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix

_BACKENDS = ("native", "scipy")


def solve_assignment_min(cost: np.ndarray) -> np.ndarray:
    """Minimum-cost perfect assignment of a square cost matrix.

    Returns ``assignment`` with ``assignment[row] = column``.  Shortest
    augmenting path with dual potentials; inner loops are vectorised over
    columns, keeping the O(n^3) total but with numpy constants.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2 or cost.shape[0] != cost.shape[1]:
        raise ValueError(f"cost must be square, got shape {cost.shape}")
    n = cost.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)

    INF = np.inf
    u = np.zeros(n + 1)                       # row potentials (1-based)
    v = np.zeros(n + 1)                       # column potentials (0 = virtual column)
    match_row = np.zeros(n + 1, dtype=np.int64)   # column -> assigned row (0 = free)
    way = np.zeros(n + 1, dtype=np.int64)         # alternating-path predecessors

    for row in range(1, n + 1):
        match_row[0] = row
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match_row[j0]
            free = ~used
            free[0] = False
            cols = np.flatnonzero(free)
            reduced = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = reduced < minv[cols]
            improving = cols[better]
            minv[improving] = reduced[better]
            way[improving] = j0
            j1 = cols[np.argmin(minv[cols])]
            delta = minv[j1]
            u[match_row[used]] += delta
            v[used] -= delta
            minv[free] -= delta
            j0 = j1
            if match_row[j0] == 0:
                break
        # Augment along the alternating path back to the virtual column.
        while j0:
            j_prev = way[j0]
            match_row[j0] = match_row[j_prev]
            j0 = j_prev

    assignment = np.empty(n, dtype=np.int64)
    assignment[match_row[1:] - 1] = np.arange(n)
    return assignment


def solve_assignment_max(
    scores: np.ndarray, backend: str = "native"
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum-score 1-to-1 assignment of a (possibly rectangular) matrix.

    Returns ``(pairs, pair_scores)``; padded assignments are dropped, so
    with ``n_source > n_target`` only ``n_target`` pairs come back.
    """
    scores = check_score_matrix(scores)
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    n_source, n_target = scores.shape

    if backend == "scipy":
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        pairs = np.stack([rows, cols], axis=1)
        return pairs, scores[rows, cols]

    size = max(n_source, n_target)
    worst = float(scores.max())
    cost = np.full((size, size), 0.0)
    cost[:n_source, :n_target] = worst - scores
    assignment = solve_assignment_min(cost)
    rows = np.arange(n_source)
    cols = assignment[:n_source]
    keep = cols < n_target
    pairs = np.stack([rows[keep], cols[keep]], axis=1)
    return pairs, scores[pairs[:, 0], pairs[:, 1]]


class Hungarian(PipelineMatcher):
    """Optimal 1-to-1 assignment over pairwise similarity scores.

    Time O(n^3), space O(n^2) — the slowest-growing but best-performing
    strategy under the 1-to-1 evaluation setting.
    """

    name = "Hun."

    def __init__(self, backend: str = "native", metric: str = "cosine") -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        super().__init__(metric=metric)
        self.backend = backend

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        size = max(scores.shape)
        # The padded cost matrix plus the solver's internal working copy
        # (both the native solver and scipy's copy the costs).
        memory.allocate("cost", 2 * size * size * 8)
        pairs, pair_scores = solve_assignment_max(scores, backend=self.backend)
        memory.release("cost")
        return pairs, pair_scores
