"""Embedding matching as the linear assignment problem (paper Sec. 3.5).

``Hun.`` maximises the *sum* of pairwise similarity scores under a hard
1-to-1 constraint — the globally optimal matching when the paper's two
assumptions (isomorphic neighbourhoods, 1-to-1 gold links) hold, and the
strongest performer in the paper's main experiments.

The solver is a from-scratch Jonker-Volgenant-style shortest augmenting
path implementation (the same O(n^3) family as the lapjv code the paper
uses), with an optional scipy backend (`linear_sum_assignment`) used by
the test suite to cross-validate the native solver and available for
callers who prefer the C implementation.

Rectangular inputs are padded to square with a constant worst-case
score; assignments to padded rows/columns are dropped, so on inputs with
more sources than targets the Hungarian matcher naturally *abstains* on
the worst-fitting sources — the dummy-node mechanism the paper applies
under the unmatchable-entity setting (Section 5.1).

:func:`solve_assignment_sparse` is the out-of-core member of the family:
an LAPJVsp-style solver that walks a CSR candidate graph directly, so
optimal assignment survives past the dense memory wall (Table 6's
"Mem." column) — O(n_rows + n_targets) solver state instead of n x n.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.optimize

from repro.core.base import MatchResult, PipelineMatcher
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.index.candidates import CandidateSet

_BACKENDS = ("native", "scipy")


def solve_assignment_min(cost: np.ndarray) -> np.ndarray:
    """Minimum-cost perfect assignment of a square cost matrix.

    Returns ``assignment`` with ``assignment[row] = column``.  Shortest
    augmenting path with dual potentials; inner loops are vectorised over
    columns, keeping the O(n^3) total but with numpy constants.
    """
    cost = np.asarray(cost, dtype=np.float64)
    if cost.ndim != 2 or cost.shape[0] != cost.shape[1]:
        raise ValueError(f"cost must be square, got shape {cost.shape}")
    n = cost.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)

    INF = np.inf
    u = np.zeros(n + 1)                       # row potentials (1-based)
    v = np.zeros(n + 1)                       # column potentials (0 = virtual column)
    match_row = np.zeros(n + 1, dtype=np.int64)   # column -> assigned row (0 = free)
    way = np.zeros(n + 1, dtype=np.int64)         # alternating-path predecessors

    for row in range(1, n + 1):
        match_row[0] = row
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match_row[j0]
            free = ~used
            free[0] = False
            cols = np.flatnonzero(free)
            reduced = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = reduced < minv[cols]
            improving = cols[better]
            minv[improving] = reduced[better]
            way[improving] = j0
            j1 = cols[np.argmin(minv[cols])]
            delta = minv[j1]
            u[match_row[used]] += delta
            v[used] -= delta
            minv[free] -= delta
            j0 = j1
            if match_row[j0] == 0:
                break
        # Augment along the alternating path back to the virtual column.
        while j0:
            j_prev = way[j0]
            match_row[j0] = match_row[j_prev]
            j0 = j_prev

    assignment = np.empty(n, dtype=np.int64)
    assignment[match_row[1:] - 1] = np.arange(n)
    return assignment


def solve_assignment_max(
    scores: np.ndarray, backend: str = "native"
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum-score 1-to-1 assignment of a (possibly rectangular) matrix.

    Returns ``(pairs, pair_scores)``; padded assignments are dropped, so
    with ``n_source > n_target`` only ``n_target`` pairs come back.
    """
    scores = check_score_matrix(scores)
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    n_source, n_target = scores.shape

    if backend == "scipy":
        rows, cols = scipy.optimize.linear_sum_assignment(scores, maximize=True)
        pairs = np.stack([rows, cols], axis=1)
        return pairs, scores[rows, cols]

    size = max(n_source, n_target)
    worst = float(scores.max())
    cost = np.full((size, size), 0.0)
    cost[:n_source, :n_target] = worst - scores
    assignment = solve_assignment_min(cost)
    rows = np.arange(n_source)
    cols = assignment[:n_source]
    keep = cols < n_target
    pairs = np.stack([rows[keep], cols[keep]], axis=1)
    return pairs, scores[pairs[:, 0], pairs[:, 1]]


@dataclass(frozen=True)
class SparseAssignment:
    """Outcome of the sparse assignment solver.

    ``pairs`` / ``pair_scores`` cover the rows assigned to real columns;
    ``shortfall`` counts rows that could only be matched through their
    dummy arc (no feasible real column remained) and therefore abstain.
    """

    pairs: np.ndarray
    pair_scores: np.ndarray
    shortfall: int


def solve_assignment_sparse(candidates: "CandidateSet") -> SparseAssignment:
    """Maximum-score 1-to-1 assignment on a CSR candidate graph.

    LAPJVsp-style successive shortest augmenting paths: one Dijkstra per
    source row over the *stored* arcs only, with dual potentials keeping
    reduced costs non-negative.  Work is O(sum of augmenting-tree sizes
    x log) and solver state is O(n_rows + n_targets) — the n x n matrix
    is never formed.

    Infeasibility fallback: every row also owns a private dummy column
    priced worse than any ``n_rows + 1`` real arcs combined, so a
    perfect matching always exists on the augmented graph and the solver
    sacrifices score only when cardinality forces it.  Rows that end on
    their dummy abstain and are counted as ``shortfall`` — the sparse
    analogue of the dense solver dropping padded columns.

    On a *complete* candidate graph (k = n_targets) the kept-score total
    equals the dense solver's, because both maximise the same objective;
    pair sets may differ only between equal-total optima (ties).
    """
    indptr = candidates.indptr
    col_ids = candidates.indices
    values = candidates.scores
    n_rows = candidates.n_sources
    n_cols = candidates.n_targets
    empty = SparseAssignment(
        np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.float64), n_rows
    )
    if n_rows == 0:
        return SparseAssignment(empty.pairs, empty.pair_scores, 0)
    if n_cols == 0 or candidates.nnz == 0:
        return empty

    # Max score -> min cost; all reduced costs start non-negative.
    best = float(values.max())
    worst = float(values.min())
    cost = best - values
    dummy_cost = (best - worst + 1.0) * (n_rows + 1)
    total_cols = n_cols + n_rows  # column n_cols + r is row r's dummy

    u = np.zeros(n_rows)
    v = np.zeros(total_cols)
    row_match = np.full(n_rows, -1, dtype=np.int64)
    col_match = np.full(total_cols, -1, dtype=np.int64)
    # Dijkstra state, allocated once and reset via the touched list so a
    # row's cost is O(its tree), not O(n_targets).
    dist = np.full(total_cols, np.inf)
    prev = np.full(total_cols, -1, dtype=np.int64)
    done = np.zeros(total_cols, dtype=bool)

    for r0 in range(n_rows):
        touched: list[int] = []
        finalized: list[int] = []
        heap: list[tuple[float, int]] = []
        entered = {r0: 0.0}  # row -> distance at which it joined the tree

        def relax(row: int, base: float) -> None:
            start, stop = int(indptr[row]), int(indptr[row + 1])
            arcs = col_ids[start:stop]
            lengths = base + cost[start:stop] - u[row] - v[arcs]
            for j, d in zip(arcs.tolist(), lengths.tolist()):
                if not done[j] and d < dist[j]:
                    dist[j] = d
                    prev[j] = row
                    touched.append(j)
                    heapq.heappush(heap, (d, j))
            j = n_cols + row  # the row's private dummy arc
            d = base + dummy_cost - u[row] - v[j]
            if not done[j] and d < dist[j]:
                dist[j] = d
                prev[j] = row
                touched.append(j)
                heapq.heappush(heap, (d, j))

        relax(r0, 0.0)
        sink = -1
        delta = 0.0
        while heap:
            d, j = heapq.heappop(heap)
            if done[j] or d > dist[j]:
                continue  # stale heap entry
            done[j] = True
            finalized.append(j)
            if col_match[j] < 0:
                sink = j
                delta = d
                break
            row = int(col_match[j])
            entered[row] = d
            relax(row, d)
        # r0's own dummy is always free, so a sink always exists.
        assert sink >= 0, "augmenting path search exhausted a feasible graph"

        for j in finalized:
            if j != sink:
                v[j] += dist[j] - delta
        for row, d_entry in entered.items():
            u[row] += delta - d_entry

        j = sink
        while True:
            row = int(prev[j])
            col_match[j] = row
            j, row_match[row] = row_match[row], j
            if row == r0:
                break

        for j in touched:
            dist[j] = np.inf
            prev[j] = -1
            done[j] = False

    matched_rows = np.flatnonzero((row_match >= 0) & (row_match < n_cols))
    pairs = np.stack([matched_rows, row_match[matched_rows]], axis=1)
    pair_scores = np.empty(len(pairs), dtype=np.float64)
    for i, (row, col) in enumerate(pairs):
        ids, row_scores = candidates.row(int(row))
        pair_scores[i] = float(row_scores[np.flatnonzero(ids == col)[0]])
    return SparseAssignment(pairs, pair_scores, n_rows - len(pairs))


class Hungarian(PipelineMatcher):
    """Optimal 1-to-1 assignment over pairwise similarity scores.

    Time O(n^3), space O(n^2) — the slowest-growing but best-performing
    strategy under the 1-to-1 evaluation setting.
    """

    name = "Hun."

    def __init__(self, backend: str = "native", metric: str = "cosine") -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        super().__init__(metric=metric)
        self.backend = backend

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        size = max(scores.shape)
        # The padded cost matrix plus the solver's internal working copy
        # (both the native solver and scipy's copy the costs).
        memory.allocate("cost", 2 * size * size * 8)
        pairs, pair_scores = solve_assignment_max(scores, backend=self.backend)
        memory.release("cost")
        return pairs, pair_scores

    def match_candidates(self, candidates: "CandidateSet") -> MatchResult:
        """Optimal assignment directly on the CSR candidate graph.

        No densify: :func:`solve_assignment_sparse` walks the stored
        arcs, so the working set is the candidate arrays plus
        O(n_rows + n_targets) solver state.  Rows the candidate graph
        cannot place abstain (dummy-arc fallback), counted on the
        ``hungarian.sparse.shortfall`` obs metric.  The ``backend``
        setting is a dense-path concern and is ignored here.
        """
        with obs_trace.span(
            "matcher.match", matcher=self.name, metric="sparse-candidates"
        ):
            watch = Stopwatch()
            memory = MemoryTracker()
            memory.allocate("candidates", candidates.nbytes)
            solver_state = (candidates.n_sources + candidates.n_targets) * 5 * 8
            memory.allocate("solver", solver_state + candidates.nnz * 8)
            with watch.measure("decode"), obs_trace.span(
                "matcher.assign", matcher=self.name, sparse=True
            ):
                assignment = solve_assignment_sparse(candidates)
            memory.release("solver")
            registry = obs_metrics.get_metrics()
            registry.inc("sparse.matches")
            registry.inc("sparse.entries", candidates.nnz)
            registry.inc("hungarian.sparse.solves")
            if assignment.shortfall:
                registry.inc("hungarian.sparse.shortfall", assignment.shortfall)
            return MatchResult(
                assignment.pairs,
                assignment.pair_scores,
                stopwatch=watch,
                memory=memory,
            )
