"""Greedy decoding and the DInf baseline (paper Algorithms 2 and 3).

``Greedy`` matches every source entity to its highest-scoring target,
independently per source — the local-optimum strategy the rest of the
surveyed algorithms improve on.  ``DInf`` is the common baseline:
similarity metric + greedy, nothing else.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, PipelineMatcher
from repro.core.sparse import sparse_match
from repro.index.candidates import CandidateSet
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix


def greedy_match(scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 2: per-row argmax decoding.

    Returns ``(pairs, pair_scores)`` with one pair per source row.  Note
    several sources may claim the same target — greedy ignores the 1-to-1
    constraint by design.
    """
    scores = check_score_matrix(scores)
    best = scores.argmax(axis=1)
    rows = np.arange(scores.shape[0])
    pairs = np.stack([rows, best], axis=1)
    return pairs, scores[rows, best]


def greedy_decoder(
    scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy decode as a :class:`PipelineMatcher` strategy (no extra
    allocations beyond the score matrix itself)."""
    return greedy_match(scores)


class DInf(PipelineMatcher):
    """Algorithm 3: similarity metric + greedy argmax.

    The most common embedding-matching implementation in the EA
    literature and the baseline every advanced strategy is compared to.
    Time and space complexity O(n^2).
    """

    name = "DInf"

    def __init__(self, metric: str = "cosine") -> None:
        super().__init__(metric=metric, decoder=greedy_decoder)

    def match_candidates(self, candidates: CandidateSet) -> MatchResult:
        """O(n) sparse greedy: each row's best stored candidate."""
        return sparse_match(candidates, name=self.name)


class Greedy(DInf):
    """Plain greedy decoding, registered as the degradation-ladder terminal.

    Identical algorithm to :class:`DInf` under its decoding name: the
    runtime's degradation ladder (``Hun.`` -> ``Greedy`` on a deadline or
    budget breach) records the *strategy* a run degraded to, and keeping
    it distinct from the DInf baseline keeps benchmark tables honest —
    a fallback result never masquerades as the DInf row.
    """

    name = "Greedy"
