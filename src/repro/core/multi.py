"""Multi-answer decoding for non-1-to-1 alignment — a paper extension.

Every algorithm surveyed by the paper emits at most one target per
source, which structurally caps recall on non-1-to-1 data (Table 8: "for
DInf, CSLS, RInf, Sink. and RL, they only align one target entity ...
but fail to discover other alignment links").  The paper's Section 6
suggests probabilistic decoding as the way forward.

:class:`MultiAnswerMatcher` implements the simplest probabilistic reading
of the pairwise scores: per source, scores over the top-k candidates are
softmax-normalised into a posterior, and every candidate whose posterior
is at least ``mass_ratio`` of the best candidate's is emitted.  On 1-to-1
data the posterior concentrates and the decoder degenerates to greedy;
on non-1-to-1 data duplicate targets share posterior mass and are all
returned, trading a little precision for substantially more recall.

The ablation benchmark ``benchmarks/test_ablation_multi_answer.py``
evaluates it on the FB_DBP_MUL-style dataset.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, Matcher
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_embedding_matrix, check_score_matrix


class MultiAnswerMatcher(Matcher):
    """Softmax posterior decoding with a relative-mass acceptance rule."""

    name = "Multi"

    def __init__(
        self,
        mass_ratio: float = 0.7,
        temperature: float = 0.05,
        top_k: int = 5,
        metric: str = "cosine",
    ) -> None:
        if not 0.0 < mass_ratio <= 1.0:
            raise ValueError(f"mass_ratio must be in (0, 1], got {mass_ratio}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.mass_ratio = mass_ratio
        self.temperature = temperature
        self.top_k = top_k
        self.metric = metric

    def match(self, source: np.ndarray, target: np.ndarray) -> MatchResult:
        source = check_embedding_matrix(source, "source")
        target = check_embedding_matrix(target, "target")
        scores = self._similarity(source, target)
        return self.match_scores(scores)

    def match_scores(self, scores: np.ndarray) -> MatchResult:
        scores = check_score_matrix(scores)
        watch = Stopwatch()
        memory = MemoryTracker()
        memory.allocate_array("similarity", scores)
        n_source, n_target = scores.shape
        k = min(self.top_k, n_target)

        with watch.measure("decode"):
            top_idx = np.argpartition(scores, n_target - k, axis=1)[:, -k:]
            # Under exact ties argpartition may pick k tied columns that
            # exclude the argmax; force the greedy choice into slot 0 so
            # multi-answer decoding always supersets greedy decoding.
            argmax = scores.argmax(axis=1)
            missing = ~(top_idx == argmax[:, None]).any(axis=1)
            top_idx[missing, 0] = argmax[missing]
            top_scores = np.take_along_axis(scores, top_idx, axis=1)
            logits = top_scores / self.temperature
            logits -= logits.max(axis=1, keepdims=True)
            posterior = np.exp(logits)
            posterior /= posterior.sum(axis=1, keepdims=True)
            accept = posterior >= self.mass_ratio * posterior.max(axis=1, keepdims=True)

            rows, cols = np.nonzero(accept)
            pairs = np.stack([rows, top_idx[rows, cols]], axis=1)
            pair_scores = top_scores[rows, cols]
        return MatchResult(pairs, pair_scores, stopwatch=watch, memory=memory)
