"""Reciprocal embedding matching — RInf and its variants (paper Alg. 5).

RInf casts EA as reciprocal recommendation: a *preference* score is
computed in each direction (Equation 2) —

    p(u -> v) = S(u, v) - max_u' S(u', v) + 1

i.e. u's raw affinity for v discounted by v's best alternative — then
each direction's preferences are converted to *ranks*, and the two rank
matrices are averaged into the reciprocal preference matrix decoded
greedily.  The ranking step amplifies small score differences and is
what gives RInf its edge over CSLS, at the cost of two O(n^2 lg n) sorts
and several extra n x n matrices.

Two scalability variants from the original paper are included:

* :class:`RInfWr` ("without ranking") skips the ranking step and
  averages the raw preferences — large time savings, small quality drop.
* :class:`RInfPb` ("progressive blocking") keeps the preference
  normalisation global but ranks inside disjoint blocks — bounded peak
  memory, accuracy between RInf-wr and full RInf.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, PipelineMatcher
from repro.core.blocking import best_suitor_blocks
from repro.core.greedy import greedy_match
from repro.core.sparse import sparse_match, sparse_rinf_wr
from repro.index.candidates import CandidateSet
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix


def preference_scores(
    scores: np.ndarray, k: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Directional preference matrices ``(P_st, P_ts)`` (Equation 2).

    ``P_st[u, v]`` is u's preference for v; ``P_ts`` is indexed the same
    way (source rows, target columns) but normalised per *row* — it is
    the transpose-free layout of the target-to-source preference.

    ``k`` generalises the normaliser from the *maximum* alternative to
    the mean of the top-``k`` alternatives, the variant the paper's
    Appendix C studies: k=1 (Equation 2 verbatim) is right under 1-to-1
    alignment, larger k helps under non-1-to-1 links where the best
    alternative is often a duplicate sibling.
    """
    scores = check_score_matrix(scores)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k == 1:
        column_ref = scores.max(axis=0, keepdims=True)  # each target's best suitor
        row_ref = scores.max(axis=1, keepdims=True)     # each source's best option
    else:
        from repro.similarity.topk import top_k_mean

        column_ref = top_k_mean(scores, k, axis=0)[None, :]
        row_ref = top_k_mean(scores, k, axis=1)[:, None]
    p_st = scores - column_ref + 1.0
    p_ts = scores - row_ref + 1.0
    return p_st, p_ts


def rank_matrix(preferences: np.ndarray, axis: int) -> np.ndarray:
    """Dense ranks (1 = most preferred) of ``preferences`` along ``axis``."""
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    order = np.argsort(-preferences, axis=axis, kind="stable")
    ranks = np.empty_like(order)
    ramp = np.arange(1, preferences.shape[axis] + 1)
    if axis == 1:
        np.put_along_axis(ranks, order, np.broadcast_to(ramp, preferences.shape), axis=1)
    else:
        np.put_along_axis(
            ranks, order, np.broadcast_to(ramp[:, None], preferences.shape), axis=0
        )
    return ranks


def reciprocal_rank_scores(scores: np.ndarray, k: int = 1) -> np.ndarray:
    """The negated reciprocal preference matrix ``-(R_st + R_ts)/2``.

    Negated so that greedy decoding (argmax) picks the best average rank,
    matching the paper's ``Greedy(..., -P_s<->t)``.  Preference matrices
    are built and ranked one direction at a time so at most three n x n
    buffers are live concurrently.  ``k`` is the Appendix C normaliser
    generalisation (see :func:`preference_scores`); ranking decisions are
    affected only through tie structure, so k matters mainly for the
    -wr-style consumers of the raw preferences.
    """
    p_st, p_ts = preference_scores(scores, k=k)
    r_st = rank_matrix(p_st, axis=1)
    fused = r_st.astype(np.float64)
    del p_st, r_st  # keep at most three n x n buffers live
    fused += rank_matrix(p_ts, axis=0)
    fused *= -0.5
    return fused


class RInf(PipelineMatcher):
    """Full reciprocal matching: preferences -> ranks -> greedy.

    Time O(n^2 lg n); in practice the most memory-hungry of the
    score-transform methods (the similarity matrix plus a preference
    matrix, its rank matrix, and the fused accumulator are live at the
    ranking peak).
    """

    name = "RInf"

    def __init__(self, k: int = 1, metric: str = "cosine") -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(metric=metric)
        #: Appendix C normaliser width (1 = Equation 2 verbatim).
        self.k = k

    def _transform(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> np.ndarray:
        # Peak working set while ranking: the preference matrices, a rank
        # matrix, and the fused accumulator.
        memory.allocate("preference+rank", 2 * scores.nbytes)
        fused = reciprocal_rank_scores(scores, k=self.k)
        memory.release("preference+rank")
        memory.allocate_array("reciprocal", fused)
        return fused

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        return greedy_match(scores)


class RInfWr(PipelineMatcher):
    """RInf "without ranking": average the raw directional preferences.

    Skips both O(n^2 lg n) sorts — the variant the original paper offers
    for large datasets, trading a little accuracy for a ~40x speedup
    (paper Table 6).
    """

    name = "RInf-wr"

    def _transform(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> np.ndarray:
        # (P_st + P_ts) / 2 expands to S + 1 - (column_best + row_best)/2,
        # so the fused matrix is built in ONE allocation with broadcasting
        # — the memory frugality that keeps RInf-wr feasible at scale.
        column_best = scores.max(axis=0, keepdims=True)
        row_best = scores.max(axis=1, keepdims=True)
        fused = scores + (1.0 - (column_best + row_best) / 2.0)
        memory.allocate_array("reciprocal", fused)
        return fused

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        return greedy_match(scores)

    def match_candidates(self, candidates: CandidateSet) -> MatchResult:
        """O(n k) RInf-wr: fused preference over the stored entries."""
        return sparse_match(candidates, transform=sparse_rinf_wr, name=self.name)


class RInfPb(PipelineMatcher):
    """RInf with progressive blocking (memory-bounded ranking).

    Full RInf's cost is the two global O(n^2 lg n) ranking passes and the
    n x n rank matrices they materialise.  RInf-pb keeps the *preference*
    normalisation global (each target's best suitor and each source's
    best option are cheap vectors) but performs the ranking *inside
    disjoint blocks*: targets are bucketed by their best suitor, each
    source joins the bucket of its argmax target, and per-block ranks are
    rescaled by the block's coverage so they remain comparable to global
    ranks.  Peak memory drops from ~5 n^2 matrices to one block's worth;
    accuracy sits between RInf-wr and full RInf (paper Table 6).
    """

    name = "RInf-pb"

    def __init__(self, num_blocks: int = 4, metric: str = "cosine") -> None:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        super().__init__(metric=metric)
        self.num_blocks = num_blocks

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        n_source, n_target = scores.shape
        num_blocks = min(self.num_blocks, n_source, n_target)
        # Global preference context: cheap O(n) vectors.
        column_best = scores.max(axis=0, keepdims=True)
        row_best = scores.max(axis=1, keepdims=True)
        # Bucket targets by best suitor; sources follow their argmax target
        # (the shared top-1 pass, computed once in the helper).
        target_blocks, source_block = best_suitor_blocks(scores, num_blocks)

        pairs: list[np.ndarray] = []
        pair_scores: list[np.ndarray] = []
        peak_block = 0
        for block_id, block_targets in enumerate(target_blocks):
            block_sources = np.flatnonzero(source_block == block_id)
            if len(block_sources) == 0 or len(block_targets) == 0:
                continue
            sub = scores[np.ix_(block_sources, block_targets)]
            peak_block = max(peak_block, sub.nbytes)
            # Globally-normalised preferences, ranked within the block.
            p_st = sub - column_best[:, block_targets] + 1.0
            p_ts = sub - row_best[block_sources, :] + 1.0
            r_st = rank_matrix(p_st, axis=1) * (n_target / len(block_targets))
            r_ts = rank_matrix(p_ts, axis=0) * (n_source / len(block_sources))
            fused = -(r_st + r_ts) / 2.0
            local_pairs, local_scores = greedy_match(fused)
            pairs.append(
                np.stack(
                    [block_sources[local_pairs[:, 0]], block_targets[local_pairs[:, 1]]],
                    axis=1,
                )
            )
            pair_scores.append(local_scores)
        # Peak footprint: one block's preference + rank matrices (x5).
        memory.allocate("block", 5 * peak_block)
        memory.release("block")
        if not pairs:
            return np.empty((0, 2), dtype=np.int64), np.empty(0)
        return np.concatenate(pairs), np.concatenate(pair_scores)
