"""Name -> matcher factory registry (EntMatcher's loosely-coupled API).

The experiment harness refers to matchers by their paper names ("DInf",
"CSLS", ...); :func:`create_matcher` instantiates them with optional
keyword overrides, and :func:`available_matchers` lists what exists —
including the RInf scalability variants.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import Matcher
from repro.core.csls import CSLS
from repro.core.greedy import DInf, Greedy
from repro.core.hungarian import Hungarian
from repro.core.multi import MultiAnswerMatcher
from repro.core.rinf import RInf, RInfPb, RInfWr
from repro.core.rl import RLMatcher
from repro.core.sinkhorn import Sinkhorn
from repro.core.stable import StableMatch

_FACTORIES: dict[str, Callable[..., Matcher]] = {
    "DInf": DInf,
    "CSLS": CSLS,
    "RInf": RInf,
    "RInf-wr": RInfWr,
    "RInf-pb": RInfPb,
    "Sink.": Sinkhorn,
    "Hun.": Hungarian,
    "SMat": StableMatch,
    "RL": RLMatcher,
    # Extensions beyond the surveyed seven (see DESIGN.md):
    "Multi": MultiAnswerMatcher,
    # Degradation-ladder terminal (see repro.runtime.supervisor): plain
    # greedy decoding under its own name so fallback results are never
    # conflated with the DInf baseline rows.
    "Greedy": Greedy,
}

#: The seven algorithms of the paper's main comparison, in table order.
PAPER_MATCHERS = ("DInf", "CSLS", "RInf", "Sink.", "Hun.", "SMat", "RL")


def available_matchers() -> list[str]:
    """All registered matcher names."""
    return list(_FACTORIES)


def create_matcher(name: str, **kwargs: object) -> Matcher:
    """Instantiate the matcher registered as ``name``.

    Keyword arguments are forwarded to the matcher's constructor (e.g.
    ``create_matcher("Sink.", iterations=50)``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(_FACTORIES)
        raise ValueError(f"unknown matcher {name!r}; known matchers: {known}")
    return factory(**kwargs)


def register_matcher(name: str, factory: Callable[..., Matcher]) -> None:
    """Register a custom matcher factory under ``name``.

    Existing names cannot be overwritten (explicit removal first), which
    keeps accidental shadowing of paper algorithms loud.
    """
    if name in _FACTORIES:
        raise ValueError(f"matcher {name!r} is already registered")
    _FACTORIES[name] = factory
