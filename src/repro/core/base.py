"""Matcher interface and shared plumbing for the embedding-matching stage.

A :class:`Matcher` consumes a source and target embedding matrix (rows
already restricted to the query/candidate entities by the caller) and
returns a :class:`MatchResult`: the matched (row, column) pairs plus
wall-clock and memory instrumentation for the efficiency experiments.

The architecture follows EntMatcher's loosely-coupled decomposition
(paper Section 4.1): a similarity metric builds the raw score matrix, a
*score transform* optionally reworks it (CSLS / reciprocal / Sinkhorn),
and a *matching strategy* decodes pairs (greedy / Hungarian /
Gale-Shapley / RL).  :class:`PipelineMatcher` is that composition; the
named algorithms in this package are preconfigured instances or
subclasses of it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.obs import trace as obs_trace
from repro.similarity.metrics import similarity_matrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.index.candidates import CandidateSet
    from repro.similarity.engine import SimilarityEngine
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_embedding_matrix, check_score_matrix


@dataclass
class MatchResult:
    """Output of one matcher run.

    ``pairs`` holds (source row, target column) indices into the matrices
    given to :meth:`Matcher.match`; a matcher that abstains on some
    sources simply omits them.  ``scores`` are the decoder's final scores
    for the emitted pairs (same length as ``pairs``).
    """

    pairs: np.ndarray
    scores: np.ndarray
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    memory: MemoryTracker = field(default_factory=MemoryTracker)

    def __post_init__(self) -> None:
        self.pairs = np.asarray(self.pairs, dtype=np.int64).reshape(-1, 2)
        self.scores = np.asarray(self.scores, dtype=np.float64).reshape(-1)
        if len(self.pairs) != len(self.scores):
            raise ValueError(
                f"pairs ({len(self.pairs)}) and scores ({len(self.scores)}) disagree"
            )

    @property
    def seconds(self) -> float:
        """Total wall-clock seconds across instrumented phases."""
        return self.stopwatch.total

    @property
    def peak_bytes(self) -> int:
        """Peak declared working set in bytes."""
        return self.memory.peak_bytes

    def as_set(self) -> set[tuple[int, int]]:
        """The matched pairs as a set of (row, column) tuples."""
        return {(int(row), int(col)) for row, col in self.pairs}


class Matcher(ABC):
    """Base class for all embedding-matching algorithms."""

    #: Short display name used in tables ("DInf", "CSLS", ...).
    name: str = "matcher"

    #: Optional shared :class:`~repro.similarity.engine.SimilarityEngine`.
    #: When set, the matcher derives S through the engine — parallel,
    #: dtype-tuned, and cached across every matcher sharing the engine —
    #: instead of the serial :func:`similarity_matrix`.  Assign freely
    #: after construction; the harness attaches one engine per sweep.
    engine: "SimilarityEngine | None" = None

    @abstractmethod
    def match(self, source: np.ndarray, target: np.ndarray) -> MatchResult:
        """Match source rows to target rows; see :class:`MatchResult`."""

    def _similarity(
        self, source: np.ndarray, target: np.ndarray, metric: str | None = None
    ) -> np.ndarray:
        """Score matrix via the attached engine, or serially without one."""
        if metric is None:
            metric = getattr(self, "metric", "cosine")
        if self.engine is not None:
            return self.engine.similarity(source, target, metric=metric)
        return similarity_matrix(source, target, metric=metric)

    def match_scores(self, scores: np.ndarray) -> MatchResult:
        """Match from a precomputed pairwise score matrix.

        Default implementation raises; :class:`PipelineMatcher` supports
        it, which covers every algorithm in this library.
        """
        raise NotImplementedError(f"{type(self).__name__} requires embeddings")

    def match_candidates(self, candidates: "CandidateSet") -> MatchResult:
        """Match from sparse top-k candidate lists.

        The default falls back to the dense path — the candidate set is
        densified (counted on the ``sparse.densify`` obs metric) and fed
        to :meth:`match_scores`.  This keeps Hungarian/Sinkhorn usable on
        indexed candidates; the O(n k) matchers override it with a truly
        sparse path.
        """
        return self.match_scores(candidates.densify())

    @property
    def supports_sparse(self) -> bool:
        """Whether this matcher has a real sparse path (no densify).

        The degradation ladder uses this to decide if a memory-budget
        breach can be survived by re-running the same matcher sparsely.
        """
        return type(self).match_candidates is not Matcher.match_candidates

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: A score transform maps (scores, stopwatch, memory) -> new scores.
ScoreTransform = Callable[[np.ndarray, Stopwatch, MemoryTracker], np.ndarray]

#: A decode strategy maps (scores, stopwatch, memory) -> (pairs, pair_scores).
DecodeStrategy = Callable[
    [np.ndarray, Stopwatch, MemoryTracker], tuple[np.ndarray, np.ndarray]
]


class PipelineMatcher(Matcher):
    """Similarity metric -> optional score transform -> decode strategy.

    This is the generic composition underlying EntMatcher; the named
    matchers configure it.  Subclasses may override :meth:`_transform`
    and :meth:`_decode` instead of passing callables.
    """

    def __init__(
        self,
        metric: str = "cosine",
        transform: ScoreTransform | None = None,
        decoder: DecodeStrategy | None = None,
        name: str | None = None,
        engine: "SimilarityEngine | None" = None,
    ) -> None:
        self.metric = metric
        self._transform_fn = transform
        self._decoder_fn = decoder
        self.engine = engine
        if name is not None:
            self.name = name

    # -- pipeline hooks ------------------------------------------------

    def _transform(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> np.ndarray:
        if self._transform_fn is not None:
            return self._transform_fn(scores, watch, memory)
        return scores

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._decoder_fn is not None:
            return self._decoder_fn(scores, watch, memory)
        raise NotImplementedError(f"{type(self).__name__} has no decode strategy")

    # -- public API ----------------------------------------------------

    def match(self, source: np.ndarray, target: np.ndarray) -> MatchResult:
        """Full pipeline from embeddings."""
        with obs_trace.span("matcher.match", matcher=self.name, metric=self.metric):
            source = check_embedding_matrix(source, "source")
            target = check_embedding_matrix(target, "target")
            watch = Stopwatch()
            memory = MemoryTracker()
            with watch.measure("similarity"), obs_trace.span(
                "matcher.score", matcher=self.name
            ):
                scores = self._similarity(source, target)
            memory.allocate_array("similarity", scores)
            return self._finish(scores, watch, memory)

    def match_scores(self, scores: np.ndarray) -> MatchResult:
        """Pipeline from a precomputed score matrix (skips the metric)."""
        with obs_trace.span("matcher.match", matcher=self.name, metric="precomputed"):
            scores = check_score_matrix(scores)
            watch = Stopwatch()
            memory = MemoryTracker()
            memory.allocate_array("similarity", scores)
            return self._finish(scores, watch, memory)

    def _finish(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> MatchResult:
        # Transforms declare their own working-set allocations; the base
        # pipeline only accounts for the similarity matrix itself.
        with watch.measure("transform"), obs_trace.span(
            "matcher.rescale", matcher=self.name
        ):
            transformed = self._transform(scores, watch, memory)
        with watch.measure("decode"), obs_trace.span(
            "matcher.assign", matcher=self.name
        ):
            pairs, pair_scores = self._decode(transformed, watch, memory)
        return MatchResult(pairs, pair_scores, stopwatch=watch, memory=memory)
