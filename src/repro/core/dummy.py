"""Dummy-node augmentation for constrained matchers (paper Section 5.1).

Hungarian and Gale-Shapley assume equally sized sides.  Under the
unmatchable-entity setting the sides differ, so the paper "adds dummy
nodes on the side with fewer entities".  A source assigned to a dummy
column abstains — which is exactly the behaviour that lifts Hun./SMat
above the greedy methods on DBP15K+ (greedy methods answer every query
and bleed precision).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, Matcher
from repro.utils.validation import check_score_matrix


def pad_with_dummies(scores: np.ndarray, fill: float | None = None) -> np.ndarray:
    """Pad the smaller side of ``scores`` with dummy rows/columns.

    ``fill`` defaults to the matrix minimum, so real candidates are
    always preferred over dummies and only the worst-fitting entities
    fall onto them.
    """
    scores = check_score_matrix(scores)
    n_source, n_target = scores.shape
    if n_source == n_target:
        return scores
    size = max(n_source, n_target)
    value = float(scores.min()) if fill is None else fill
    padded = np.full((size, size), value)
    padded[:n_source, :n_target] = scores
    return padded


def strip_dummy_pairs(result: MatchResult, n_source: int, n_target: int) -> MatchResult:
    """Drop pairs that involve a dummy row or column."""
    keep = (result.pairs[:, 0] < n_source) & (result.pairs[:, 1] < n_target)
    return MatchResult(
        result.pairs[keep],
        result.scores[keep],
        stopwatch=result.stopwatch,
        memory=result.memory,
    )


class DummyPaddedMatcher(Matcher):
    """Wrap a matcher so it runs on the dummy-padded square matrix.

    The wrapped matcher must support :meth:`Matcher.match_scores` (all
    pipeline matchers do).  Dummy assignments are stripped from the
    result, so the wrapped Hungarian/SMat abstain on surplus entities.
    """

    def __init__(self, inner: Matcher, fill: float | None = None) -> None:
        self.inner = inner
        self.fill = fill
        self.name = f"{inner.name}+dummy"

    def match(self, source: np.ndarray, target: np.ndarray) -> MatchResult:
        # Share the inner matcher's engine when the wrapper has none of
        # its own, so padded sweeps still hit the cross-matcher cache.
        if self.engine is None and getattr(self.inner, "engine", None) is not None:
            self.engine = self.inner.engine
        scores = self._similarity(
            source, target, metric=getattr(self.inner, "metric", "cosine")
        )
        return self.match_scores(scores)

    def match_scores(self, scores: np.ndarray) -> MatchResult:
        scores = check_score_matrix(scores)
        n_source, n_target = scores.shape
        padded = pad_with_dummies(scores, fill=self.fill)
        result = self.inner.match_scores(padded)
        return strip_dummy_pairs(result, n_source, n_target)
