"""Sinkhorn-operation matching (paper Algorithm 6).

The Sinkhorn operation turns the similarity matrix into an approximately
doubly-stochastic matrix by alternating row and column normalisation of
``exp(S / temperature)`` (Equation 3).  As the iteration count ``l``
grows, the result approaches the solution of entropy-regularised optimal
transport — i.e. a soft 1-to-1 assignment — so greedy decoding on the
Sinkhorn matrix implicitly enforces the 1-to-1 constraint *progressively*
(the paper's Figure 7: F1 rises with ``l`` and saturates around 100).

``temperature`` is the entropic-regularisation strength: smaller values
sharpen the operation towards the exact assignment (Hungarian) at the
cost of needing more iterations to converge.  Below roughly 1e-300 the
kernel ``S / temperature`` overflows to infinity before the log-space
normalisation can stabilise it; the iteration then degenerates to NaN.
That failure is *retryable at a higher temperature* — the supervised
runtime (:mod:`repro.runtime.supervisor`) catches the resulting
:class:`~repro.errors.ConvergenceError` and re-runs with the
temperature multiplied by its policy's ``temperature_factor``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import PipelineMatcher
from repro.core.greedy import greedy_match
from repro.errors import ConvergenceError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix

_EPS = 1e-12


def sinkhorn_scores(
    scores: np.ndarray, iterations: int = 100, temperature: float = 0.02
) -> np.ndarray:
    """Apply ``iterations`` rounds of Sinkhorn normalisation to ``scores``.

    Computed in log space for numerical stability (direct exponentiation
    of ``S / temperature`` overflows for small temperatures).
    """
    scores = check_score_matrix(scores)
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    # Overflow here is handled by the guard below, not by numpy warnings.
    with np.errstate(over="ignore"):
        log_kernel = scores / temperature
    _check_converged(log_kernel, temperature, iteration=0)
    for iteration in range(1, iterations + 1):
        with obs_trace.span("sinkhorn.iter", k=iteration):
            log_kernel = log_kernel - _logsumexp(log_kernel, axis=1, keepdims=True)  # rows
            log_kernel = log_kernel - _logsumexp(log_kernel, axis=0, keepdims=True)  # cols
            _check_converged(log_kernel, temperature, iteration)
    obs_metrics.get_metrics().inc("sinkhorn.iterations", iterations)
    return np.exp(log_kernel)


def _check_converged(log_kernel: np.ndarray, temperature: float, iteration: int) -> None:
    """Post-iteration guard: diverged kernels raise instead of flowing on.

    Without this, an overflow at small temperature (``S / temperature``
    -> inf -> NaN under normalisation) silently feeds NaNs into the
    greedy decoder, whose argmax then emits arbitrary pairs.  The typed
    :class:`~repro.errors.ConvergenceError` carries the temperature and
    iteration so the supervisor can retry at a softer temperature.
    """
    if np.all(np.isfinite(log_kernel)):
        return
    obs_metrics.get_metrics().inc("sinkhorn.divergences")
    obs_trace.event("sinkhorn.diverged", temperature=temperature, iteration=iteration)
    raise ConvergenceError(
        "Sinkhorn kernel diverged to non-finite values at iteration "
        f"{iteration} (temperature={temperature:g}); retry at a higher temperature",
        temperature=temperature,
        iteration=iteration,
    )


def _logsumexp(matrix: np.ndarray, axis: int, keepdims: bool) -> np.ndarray:
    peak = matrix.max(axis=axis, keepdims=True)
    result = peak + np.log(np.maximum(np.exp(matrix - peak).sum(axis=axis, keepdims=True), _EPS))
    return result if keepdims else np.squeeze(result, axis=axis)


class Sinkhorn(PipelineMatcher):
    """Sinkhorn score transformation + greedy decoding.

    Time O(l n^2); space O(n^2) but with a high constant (the kernel is
    rewritten every iteration), matching the paper's observation that
    Sink. is among the slowest methods on large inputs.
    """

    name = "Sink."

    def __init__(
        self, iterations: int = 100, temperature: float = 0.02, metric: str = "cosine"
    ) -> None:
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        super().__init__(metric=metric)
        self.iterations = iterations
        self.temperature = temperature

    def _transform(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> np.ndarray:
        # Working set: the log kernel plus the shifted/exponentiated
        # intermediate produced by every normalisation sweep.
        memory.allocate("kernel", 2 * scores.nbytes)
        result = sinkhorn_scores(scores, self.iterations, self.temperature)
        memory.release("kernel")
        memory.allocate_array("sinkhorn", result)
        return result

    def _decode(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> tuple[np.ndarray, np.ndarray]:
        return greedy_match(scores)
