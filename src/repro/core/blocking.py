"""Blocking: run any matcher inside sub-quadratic candidate blocks.

The paper's direction 4 calls for scalable matching; its reference point
(ClusterEA) partitions large problems into mini-batches and matches
within them.  :class:`BlockedMatcher` generalises the idea to *any*
matcher in this library:

* given **embeddings**, a deterministic mini k-means is fitted on the
  (centered) target space — O(n d k) work, no n^2 matrix — and each side
  is assigned to its nearest centroid's block.  Equivalent entities have
  similar embeddings, so most gold pairs co-locate.  Peak memory is the
  largest block's similarity matrix, the concrete obstacle Table 6
  documents for RInf/Sink./Hun. at scale.
* given a **precomputed score matrix**, blocking falls back to
  best-suitor bucketing (like RInf-pb); the memory saving then only
  applies to the wrapped matcher's working set, since the caller already
  paid for the scores.

Accuracy degrades only for pairs split across block boundaries; the
``overlap`` fraction duplicates a margin of each block's targets into
its neighbour to blunt the boundary effect.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, Matcher
from repro.similarity.topk import top1_indices
from repro.utils.kmeans import centroid_distances, kmeans_centroids, nearest_centroid
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_embedding_matrix,
    check_score_matrix,
    check_shape_compatible,
)


def best_suitor_blocks(
    scores: np.ndarray, num_blocks: int
) -> tuple[list[np.ndarray], np.ndarray]:
    """Best-suitor bucketing of a score matrix (RInf-pb's partition).

    Targets are bucketed by their best suitor (each column's top-1
    source) and each source joins the bucket of its own best option
    (each row's top-1 target).  Both top-1 passes are computed exactly
    once here — the shared pass that :class:`BlockedMatcher` and
    :class:`~repro.core.rinf.RInfPb` previously each derived on their
    own.  Returns ``(target_blocks, source_block)``: the list of target
    index arrays per block, and each source row's block id.
    """
    n_source, n_target = scores.shape
    best_suitor = top1_indices(scores, axis=0)  # per target, its best source
    best_option = top1_indices(scores, axis=1)  # per source, its best target
    target_order = np.argsort(best_suitor, kind="stable")
    target_blocks = np.array_split(target_order, num_blocks)
    block_of_target = np.empty(n_target, dtype=np.int64)
    for block_id, block in enumerate(target_blocks):
        block_of_target[block] = block_id
    return target_blocks, block_of_target[best_option]


class BlockedMatcher(Matcher):
    """Partition the problem into blocks and run ``inner`` inside each."""

    def __init__(self, inner: Matcher, num_blocks: int = 4, overlap: float = 0.1) -> None:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if not 0.0 <= overlap < 1.0:
            raise ValueError(f"overlap must be in [0, 1), got {overlap}")
        self.inner = inner
        self.num_blocks = num_blocks
        self.overlap = overlap
        self.name = f"{inner.name}+blocked"

    # ------------------------------------------------------------------

    def match(self, source: np.ndarray, target: np.ndarray) -> MatchResult:
        """Embedding-space blocking via k-means over the target space.

        Cluster centroids are fitted on the target embeddings (O(n d k)
        work — no n^2 matrix); each target joins its nearest centroid's
        block, optionally expanded with its runner-up assignments
        (``overlap``), and each source queries the block of its own
        nearest centroid.
        """
        source = check_embedding_matrix(source, "source")
        target = check_embedding_matrix(target, "target")
        check_shape_compatible(source, target)
        watch = Stopwatch()
        memory = MemoryTracker()

        with watch.measure("blocking"):
            num_blocks = min(self.num_blocks, target.shape[0])
            centroids, center = kmeans_centroids(target, num_blocks)
            target_blocks = self._assign_with_overlap(target, centroids, center)
            source_block = nearest_centroid(source, centroids, center)

        pairs: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        best_score = np.full(source.shape[0], -np.inf)
        peak_block = 0
        for block_id, block_targets in enumerate(target_blocks):
            block_sources = np.flatnonzero(source_block == block_id)
            if len(block_sources) == 0 or len(block_targets) == 0:
                continue
            peak_block = max(peak_block, len(block_sources) * len(block_targets) * 8)
            result = self.inner.match(source[block_sources], target[block_targets])
            if len(result.pairs) == 0:
                continue
            global_pairs = np.stack(
                [block_sources[result.pairs[:, 0]], block_targets[result.pairs[:, 1]]],
                axis=1,
            )
            pairs.append(global_pairs)
            scores.append(result.scores)
        memory.allocate("block", peak_block)
        memory.release("block")
        return self._dedupe(pairs, scores, best_score, watch, memory)

    def match_scores(self, scores_matrix: np.ndarray) -> MatchResult:
        """Score-matrix blocking via best-suitor bucketing."""
        scores_matrix = check_score_matrix(scores_matrix)
        watch = Stopwatch()
        memory = MemoryTracker()
        memory.allocate_array("similarity", scores_matrix)
        n_source, n_target = scores_matrix.shape
        num_blocks = min(self.num_blocks, n_source, n_target)
        target_blocks, source_block = best_suitor_blocks(scores_matrix, num_blocks)

        pairs: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        best_score = np.full(n_source, -np.inf)
        for block_id, block_targets in enumerate(target_blocks):
            block_sources = np.flatnonzero(source_block == block_id)
            if len(block_sources) == 0 or len(block_targets) == 0:
                continue
            sub = scores_matrix[np.ix_(block_sources, block_targets)]
            result = self.inner.match_scores(sub)
            if len(result.pairs) == 0:
                continue
            global_pairs = np.stack(
                [block_sources[result.pairs[:, 0]], block_targets[result.pairs[:, 1]]],
                axis=1,
            )
            pairs.append(global_pairs)
            scores.append(result.scores)
        return self._dedupe(pairs, scores, best_score, watch, memory)

    # ------------------------------------------------------------------

    def _assign_with_overlap(
        self, target: np.ndarray, centroids: np.ndarray, center: np.ndarray
    ) -> list[np.ndarray]:
        """Targets per block; with overlap, boundary targets join two blocks.

        A target is a boundary case when its second-nearest centroid is
        almost as close as its nearest; the ``overlap`` fraction of the
        most boundary-like targets is duplicated into the runner-up block.
        """
        distances = centroid_distances(target, centroids, center)
        nearest = distances.argmin(axis=1)
        blocks = [np.flatnonzero(nearest == b) for b in range(len(centroids))]
        if self.overlap <= 0 or len(centroids) < 2:
            return blocks
        order = np.argsort(distances, axis=1)
        runner_up = order[:, 1]
        margin = distances[np.arange(len(target)), runner_up] - distances[
            np.arange(len(target)), nearest
        ]
        cutoff = np.quantile(margin, self.overlap)
        boundary = np.flatnonzero(margin <= cutoff)
        expanded = [list(block) for block in blocks]
        for idx in boundary:
            expanded[int(runner_up[idx])].append(int(idx))
        return [np.unique(np.asarray(block, dtype=np.int64)) for block in expanded]

    @staticmethod
    def _dedupe(
        pairs: list[np.ndarray],
        scores: list[np.ndarray],
        best_score: np.ndarray,
        watch: Stopwatch,
        memory: MemoryTracker,
    ) -> MatchResult:
        """Keep each source's best-scoring pair across (overlapping) blocks."""
        if not pairs:
            return MatchResult(
                np.empty((0, 2), dtype=np.int64), np.empty(0),
                stopwatch=watch, memory=memory,
            )
        all_pairs = np.concatenate(pairs)
        all_scores = np.concatenate(scores)
        chosen: dict[int, int] = {}
        for idx, (source_id, _) in enumerate(all_pairs):
            current = chosen.get(int(source_id))
            if current is None or all_scores[idx] > all_scores[current]:
                chosen[int(source_id)] = idx
        keep = sorted(chosen.values())
        return MatchResult(
            all_pairs[keep], all_scores[keep], stopwatch=watch, memory=memory
        )
