"""Sparse-aware matching kernels over top-k candidate lists.

The dense matchers transform and decode an n x n score matrix; these
kernels do the same algebra over a :class:`~repro.index.candidates.
CandidateSet` — O(n k) entries instead of O(n^2) cells, so Greedy,
CSLS, and RInf-wr run on candidate lists without ever materialising the
matrix Table 6 blames for the memory blow-ups.

Semantics relative to the dense transforms:

* **Greedy** — exact on the candidate set: each row's best candidate.
  Identical to dense greedy whenever the true argmax is in the list
  (recall@1 of the candidate generator).
* **CSLS** — Equation 1 with both phi statistics estimated from the
  stored entries: a row's phi is the mean of its top ``k`` candidate
  scores (equal to the dense phi while ``k <= list length``); a
  target's phi is the mean of its top ``k`` scores *among the entries
  that reference it*.  Hubs appear in many lists, so the hubness
  penalty survives sparsification.
* **RInf-wr** — the one-allocation fused preference
  ``S + 1 - (column_best + row_best) / 2`` with both best vectors taken
  over the stored entries.

All three decode greedily (each transform's dense counterpart does
too), and every kernel preserves the CSR layout — rescaling only
re-sorts entries *within* their row.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult
from repro.index.candidates import CandidateSet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch


def _row_top_k_mean(candidates: CandidateSet, k: int) -> np.ndarray:
    """Per-row mean of the top-``k`` stored scores (rows are best-first)."""
    counts = candidates.row_counts
    nnz = candidates.nnz
    position = np.arange(nnz) - np.repeat(candidates.indptr[:-1], counts)
    take = position < k
    rows = candidates.row_of_entry()[take]
    sums = np.zeros(candidates.n_sources)
    np.add.at(sums, rows, candidates.scores[take])
    taken = np.minimum(counts, k)
    return sums / np.maximum(taken, 1)


def _column_top_k_mean(candidates: CandidateSet, k: int) -> np.ndarray:
    """Per-target mean of its top-``k`` scores among the stored entries.

    Entries are grouped by column via one lexsort (descending score
    within a column), then the first ``k`` of each group are averaged.
    Targets referenced by no entry get 0 — they are unreachable by any
    sparse decoder anyway.
    """
    cols = candidates.indices
    scores = candidates.scores
    nnz = candidates.nnz
    if nnz == 0:
        return np.zeros(candidates.n_targets)
    order = np.lexsort((-scores, cols))
    sorted_cols = cols[order]
    sorted_scores = scores[order]
    group_starts = np.flatnonzero(np.r_[True, sorted_cols[1:] != sorted_cols[:-1]])
    group_sizes = np.diff(np.r_[group_starts, nnz])
    position = np.arange(nnz) - np.repeat(group_starts, group_sizes)
    take = position < k
    sums = np.zeros(candidates.n_targets)
    np.add.at(sums, sorted_cols[take], sorted_scores[take])
    counts = np.zeros(candidates.n_targets, dtype=np.int64)
    np.add.at(counts, sorted_cols[take], 1)
    return sums / np.maximum(counts, 1)


def _resorted(candidates: CandidateSet, new_scores: np.ndarray) -> CandidateSet:
    """Same structure, new entry scores, rows re-sorted best-first."""
    rows = candidates.row_of_entry()
    order = np.lexsort((-new_scores, rows))
    return CandidateSet(
        candidates.indptr.copy(),
        candidates.indices[order],
        new_scores[order],
        candidates.n_targets,
    )


def sparse_csls(candidates: CandidateSet, k: int = 1) -> CandidateSet:
    """CSLS rescaling (Equation 1) over the stored entries only."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    phi_source = _row_top_k_mean(candidates, k)
    phi_target = _column_top_k_mean(candidates, k)
    rescaled = (
        2.0 * candidates.scores
        - phi_source[candidates.row_of_entry()]
        - phi_target[candidates.indices]
    )
    return _resorted(candidates, rescaled)


def sparse_rinf_wr(candidates: CandidateSet) -> CandidateSet:
    """RInf-wr's fused preference over the stored entries.

    ``S + 1 - (column_best + row_best) / 2`` with both best vectors
    estimated from the candidate lists — the same one-allocation
    broadcasting trick as the dense transform, now O(n k).
    """
    column_best = _column_top_k_mean(candidates, 1)
    row_best = _row_top_k_mean(candidates, 1)
    fused = candidates.scores + (
        1.0
        - (column_best[candidates.indices] + row_best[candidates.row_of_entry()]) / 2.0
    )
    return _resorted(candidates, fused)


def sparse_match(
    candidates: CandidateSet,
    transform=None,
    name: str = "sparse",
) -> MatchResult:
    """Transform (optionally) then greedily decode a candidate set.

    The sparse analogue of :meth:`~repro.core.base.PipelineMatcher.
    match_scores`: working set is the CSR arrays (declared to the
    :class:`~repro.utils.memory.MemoryTracker`), decode is each row's
    best surviving candidate, and rows with no candidates abstain.
    Never allocates an array bigger than the candidate set itself.
    """
    watch = Stopwatch()
    memory = MemoryTracker()
    memory.allocate("candidates", candidates.nbytes)
    registry = obs_metrics.get_metrics()
    registry.inc("sparse.matches")
    registry.inc("sparse.entries", candidates.nnz)
    with obs_trace.span(
        "matcher.sparse", matcher=name, nnz=candidates.nnz, rows=candidates.n_sources
    ):
        working = candidates
        if transform is not None:
            with watch.measure("transform"), obs_trace.span(
                "matcher.rescale", matcher=name
            ):
                working = transform(candidates)
            memory.allocate("rescored", working.nbytes)
        with watch.measure("decode"), obs_trace.span("matcher.assign", matcher=name):
            rows, cols, scores = working.best_per_row()
    pairs = np.stack([rows, cols], axis=1)
    return MatchResult(pairs, scores, stopwatch=watch, memory=memory)
