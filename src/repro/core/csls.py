"""Cross-domain similarity local scaling (paper Algorithm 4).

CSLS rescales raw similarities to counteract *hubness* (targets that are
everyone's nearest neighbour) and *isolation* (outliers far from all
clusters): each pairwise score is penalised by the mean of both
endpoints' top-k neighbourhood scores (Equation 1)::

    CSLS(u, v) = 2 S(u, v) - phi(u) - phi(v)

Scores of entities in dense regions shrink, scores of isolated entities
grow, and greedy decoding on the rescaled matrix makes fewer hub-induced
mistakes.  ``k = 1`` is the best setting under 1-to-1 alignment
(paper Figure 6) and the default here.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, PipelineMatcher
from repro.core.greedy import greedy_decoder
from repro.core.sparse import sparse_csls, sparse_match
from repro.index.candidates import CandidateSet
from repro.similarity.topk import top_k_mean
from repro.utils.memory import MemoryTracker
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_score_matrix


def csls_scores(scores: np.ndarray, k: int = 1) -> np.ndarray:
    """The CSLS-rescaled score matrix (Equation 1 of the paper)."""
    scores = check_score_matrix(scores)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    phi_source = top_k_mean(scores, k, axis=1)  # per source row
    phi_target = top_k_mean(scores, k, axis=0)  # per target column
    return 2.0 * scores - phi_source[:, None] - phi_target[None, :]


class CSLS(PipelineMatcher):
    """CSLS rescaling + greedy decoding.

    Time and space complexity O(n^2); in practice slightly costlier than
    DInf because of the extra rescaled matrix.
    """

    name = "CSLS"

    def __init__(self, k: int = 1, metric: str = "cosine") -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(metric=metric, decoder=greedy_decoder)
        self.k = k

    def _transform(
        self, scores: np.ndarray, watch: Stopwatch, memory: MemoryTracker
    ) -> np.ndarray:
        rescaled = csls_scores(scores, k=self.k)
        memory.allocate_array("csls", rescaled)
        return rescaled

    def match_candidates(self, candidates: CandidateSet) -> MatchResult:
        """O(n k) CSLS: both phi vectors estimated from the stored entries."""
        return sparse_match(
            candidates,
            transform=lambda working: sparse_csls(working, k=self.k),
            name=self.name,
        )
