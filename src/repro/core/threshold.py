"""Threshold-based abstention — an extension beyond the surveyed methods.

The paper's Section 6 (insight 2 and direction 5) observes that no
surveyed algorithm can *decline* to answer: greedy methods align every
query — including unmatchable ones — and bleed precision on DBP15K+.
:class:`ThresholdMatcher` wraps any matcher and drops matched pairs whose
final score falls below a threshold, turning the score into an implicit
matchability probability.  :func:`calibrate_threshold` picks the
threshold on validation data by maximising F1, the usual way abstention
cutoffs are tuned in entity-resolution practice.

This module is an *extension* (clearly marked as such in DESIGN.md): the
ablation benchmark ``benchmarks/test_ablation_threshold.py`` shows it
lifting the greedy methods' precision under the unmatchable setting,
partially closing the gap to the Hungarian matcher.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import MatchResult, Matcher
from repro.eval.metrics import evaluate_pairs
from repro.utils.validation import check_score_matrix


class ThresholdMatcher(Matcher):
    """Wrap a matcher; abstain on pairs scoring below ``threshold``.

    The comparison uses the wrapped matcher's own final pair scores, so
    it composes with any pipeline (raw similarities for DInf/Hun.,
    rescaled scores for CSLS, etc.).
    """

    def __init__(self, inner: Matcher, threshold: float) -> None:
        self.inner = inner
        self.threshold = float(threshold)
        self.name = f"{inner.name}@{self.threshold:.2f}"

    def match(self, source: np.ndarray, target: np.ndarray) -> MatchResult:
        return self._filter(self.inner.match(source, target))

    def match_scores(self, scores: np.ndarray) -> MatchResult:
        return self._filter(self.inner.match_scores(scores))

    def _filter(self, result: MatchResult) -> MatchResult:
        keep = result.scores >= self.threshold
        return MatchResult(
            result.pairs[keep],
            result.scores[keep],
            stopwatch=result.stopwatch,
            memory=result.memory,
        )


def calibrate_threshold(
    matcher: Matcher,
    scores: np.ndarray,
    gold_pairs: list[tuple[int, int]] | np.ndarray,
    quantiles: int = 20,
) -> float:
    """Pick the abstention threshold maximising F1 on validation data.

    ``scores`` is the validation pairwise score matrix; ``gold_pairs``
    its gold links in local coordinates.  Candidate thresholds are the
    quantiles of the matcher's emitted pair scores (always including
    "never abstain"), so calibration is O(quantiles) matcher-free passes
    after one matching run.
    """
    scores = check_score_matrix(scores)
    if quantiles < 1:
        raise ValueError(f"quantiles must be >= 1, got {quantiles}")
    base = matcher.match_scores(scores)
    if len(base.pairs) == 0:
        return -np.inf
    candidates = np.quantile(base.scores, np.linspace(0.0, 1.0, quantiles + 1))
    best_threshold = -np.inf
    best_f1 = -1.0
    for threshold in np.concatenate(([-np.inf], candidates)):
        keep = base.scores >= threshold
        f1 = evaluate_pairs(base.pairs[keep], gold_pairs).f1
        if f1 > best_f1:
            best_f1 = f1
            best_threshold = float(threshold)
    return best_threshold
