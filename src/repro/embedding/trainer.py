"""Shared training machinery for the structural encoders.

Both the GCN and RREA encoders are trained the same way the EA literature
trains them: a margin-based ranking loss over the seed pairs with sampled
negatives, optimised with Adam.  The pieces live here so the two encoders
only differ in their propagation rule.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


class AdamOptimizer:
    """Minimal Adam implementation over a dict of named parameters."""

    def __init__(self, learning_rate: float = 0.005, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one Adam step in place; unknown grad keys are an error."""
        unknown = set(grads) - set(params)
        if unknown:
            raise KeyError(f"gradients for unknown parameters: {sorted(unknown)}")
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for name, grad in grads.items():
            if name not in self._m:
                self._m[name] = np.zeros_like(params[name])
                self._v[name] = np.zeros_like(params[name])
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def sample_negatives(
    num_pairs: int,
    num_source: int,
    num_target: int,
    negatives_per_pair: int,
    rng: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform negative entity ids for a batch of seed pairs.

    Returns ``(neg_targets, neg_sources)``, each of shape
    ``(num_pairs, negatives_per_pair)``: corrupted tails for the
    source->target direction and corrupted heads for the reverse.
    """
    if negatives_per_pair < 1:
        raise ValueError(f"negatives_per_pair must be >= 1, got {negatives_per_pair}")
    rng = ensure_rng(rng)
    neg_targets = rng.integers(0, num_target, size=(num_pairs, negatives_per_pair))
    neg_sources = rng.integers(0, num_source, size=(num_pairs, negatives_per_pair))
    return neg_targets, neg_sources


def margin_loss_and_grad(
    source_emb: np.ndarray,
    target_emb: np.ndarray,
    seed_pairs: np.ndarray,
    neg_targets: np.ndarray,
    neg_sources: np.ndarray,
    margin: float = 1.0,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Bidirectional margin ranking loss and its embedding gradients.

    Loss per seed pair (u, v) and negative v'::

        max(0, margin + ||e_u - e_v||^2 - ||e_u - e_v'||^2)

    plus the symmetric term corrupting the source side.  Returns
    ``(loss, d_source, d_target)`` where the gradient matrices have the
    same shapes as the inputs (dense, but only seed/negative rows are
    non-zero).
    """
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")
    d_source = np.zeros_like(source_emb)
    d_target = np.zeros_like(target_emb)
    src_idx = seed_pairs[:, 0]
    tgt_idx = seed_pairs[:, 1]
    e_u = source_emb[src_idx]            # (p, d)
    e_v = target_emb[tgt_idx]            # (p, d)
    diff_pos = e_u - e_v                 # (p, d)
    pos_dist = np.sum(diff_pos**2, axis=1)  # (p,)

    total_loss = 0.0
    count = seed_pairs.shape[0] * neg_targets.shape[1] * 2 or 1

    # Direction 1: corrupt the target.
    e_neg_t = target_emb[neg_targets]            # (p, k, d)
    diff_neg = e_u[:, None, :] - e_neg_t         # (p, k, d)
    neg_dist = np.sum(diff_neg**2, axis=2)       # (p, k)
    violation = margin + pos_dist[:, None] - neg_dist
    active = violation > 0
    total_loss += float(violation[active].sum())
    # d(pos_dist)/d e_u = 2 diff_pos ; d(-neg_dist)/d e_u = -2 diff_neg
    weight = active.astype(np.float64)           # (p, k)
    np.add.at(d_source, src_idx, 2.0 * diff_pos * weight.sum(axis=1, keepdims=True))
    np.add.at(d_target, tgt_idx, -2.0 * diff_pos * weight.sum(axis=1, keepdims=True))
    np.add.at(d_source, src_idx, -2.0 * np.einsum("pk,pkd->pd", weight, diff_neg))
    np.add.at(d_target, neg_targets.ravel(),
              (2.0 * weight[:, :, None] * diff_neg).reshape(-1, source_emb.shape[1]))

    # Direction 2: corrupt the source.
    e_neg_s = source_emb[neg_sources]            # (p, k, d)
    diff_neg_s = e_neg_s - e_v[:, None, :]       # (p, k, d)
    neg_dist_s = np.sum(diff_neg_s**2, axis=2)
    violation_s = margin + pos_dist[:, None] - neg_dist_s
    active_s = violation_s > 0
    total_loss += float(violation_s[active_s].sum())
    weight_s = active_s.astype(np.float64)
    np.add.at(d_source, src_idx, 2.0 * diff_pos * weight_s.sum(axis=1, keepdims=True))
    np.add.at(d_target, tgt_idx, -2.0 * diff_pos * weight_s.sum(axis=1, keepdims=True))
    np.add.at(d_source, neg_sources.ravel(),
              (-2.0 * weight_s[:, :, None] * diff_neg_s).reshape(-1, source_emb.shape[1]))
    np.add.at(d_target, tgt_idx, 2.0 * np.einsum("pk,pkd->pd", weight_s, diff_neg_s))

    scale = 1.0 / count
    return total_loss * scale, d_source * scale, d_target * scale
