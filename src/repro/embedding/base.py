"""Embedding-model interface and the unified-embedding container.

Every encoder produces a :class:`UnifiedEmbeddings`: two row-aligned
matrices living in one vector space (the "unified entity representations
E" of the paper's Algorithm 1), where row ``i`` of :attr:`source`
corresponds to entity index ``i`` of the task's source KG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.kg.pair import AlignmentTask
from repro.utils.validation import check_embedding_matrix, check_shape_compatible


@dataclass(frozen=True)
class UnifiedEmbeddings:
    """Row-aligned source/target embedding matrices in a unified space."""

    source: np.ndarray
    target: np.ndarray

    def __post_init__(self) -> None:
        source = check_embedding_matrix(self.source, "source")
        target = check_embedding_matrix(self.target, "target")
        check_shape_compatible(source, target)
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return int(self.source.shape[1])

    def normalized(self) -> "UnifiedEmbeddings":
        """Copy with L2-normalised rows (zero rows are left as zeros)."""
        return UnifiedEmbeddings(_l2_normalize(self.source), _l2_normalize(self.target))


def _l2_normalize(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


@runtime_checkable
class EmbeddingModel(Protocol):
    """Anything that can turn an alignment task into unified embeddings.

    This is the Representation_Learning() step of the paper's Algorithm 1;
    implementations may train (GCN/RREA), hash names (NameEncoder), or
    sample from the gold links (OracleEncoder).
    """

    def encode(self, task: AlignmentTask) -> UnifiedEmbeddings:
        """Produce unified embeddings for ``task``."""
        ...
