"""GCN encoder (the paper's weak structural regime, "G-").

A numpy reimplementation of the GCN-Align family.  The unified space is
built the way graph-convolutional EA models build it in effect: seed
pairs are the only cross-KG supervision, so each seed pair is assigned a
shared random basis vector (a random projection of the seed-indicator
matrix — Johnson-Lindenstrauss keeps the geometry), every other entity
starts at zero, and two rounds of symmetric-normalised graph convolution
spread the anchored signal through each KG.  An entity's embedding is
then its (multi-hop) distribution over seed anchors, and equivalent
entities with overlapping neighbourhoods land close together.

Only the *final* convolution layer is emitted — the vanilla-GCN design —
which is what makes this encoder measurably weaker than
:class:`repro.embedding.rrea.RREAEncoder` (deeper propagation, layer
concatenation, relation weighting, bootstrapping), reproducing the
paper's G- < R- quality gap.

An optional margin-loss fine-tuning stage (`fine_tune_epochs > 0`)
refines the anchored features with the shared trainer machinery.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import UnifiedEmbeddings
from repro.embedding.trainer import AdamOptimizer, margin_loss_and_grad, sample_negatives
from repro.kg.pair import AlignmentTask
from repro.utils.rng import RandomState, ensure_rng


class GCNEncoder:
    """Two-layer graph-convolutional encoder over seed-anchored features."""

    def __init__(
        self,
        dim: int = 32,
        num_layers: int = 2,
        fine_tune_epochs: int = 0,
        learning_rate: float = 0.01,
        margin: float = 1.0,
        negatives_per_pair: int = 5,
        seed: RandomState = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if fine_tune_epochs < 0:
            raise ValueError(f"fine_tune_epochs must be >= 0, got {fine_tune_epochs}")
        self.dim = dim
        self.num_layers = num_layers
        self.fine_tune_epochs = fine_tune_epochs
        self.learning_rate = learning_rate
        self.margin = margin
        self.negatives_per_pair = negatives_per_pair
        self.seed = seed
        #: Per-epoch fine-tuning loss, filled by :meth:`encode`.
        self.loss_history: list[float] = []

    def encode(self, task: AlignmentTask) -> UnifiedEmbeddings:
        """Build unified embeddings for ``task`` (see module docstring)."""
        rng = ensure_rng(self.seed)
        seed_pairs = task.seed_index_pairs()
        if len(seed_pairs) == 0:
            raise ValueError("GCNEncoder requires at least one seed pair")
        adj_source = task.source.normalized_adjacency()
        adj_target = task.target.normalized_adjacency()

        x_source, x_target = seed_anchor_features(
            task.source.num_entities,
            task.target.num_entities,
            seed_pairs,
            self.dim,
            rng,
        )
        self.loss_history = []
        if self.fine_tune_epochs:
            x_source, x_target = self._fine_tune(
                adj_source, adj_target, x_source, x_target, seed_pairs, rng
            )
        source_out = _convolve(adj_source, x_source, self.num_layers)
        target_out = _convolve(adj_target, x_target, self.num_layers)
        return UnifiedEmbeddings(source_out, target_out).normalized()

    # ------------------------------------------------------------------

    def _fine_tune(
        self,
        adj_source: sp.csr_matrix,
        adj_target: sp.csr_matrix,
        x_source: np.ndarray,
        x_target: np.ndarray,
        seed_pairs: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Margin-loss refinement of the anchored features.

        The convolution is linear in the features, so the exact feature
        gradient is the adjoint propagation of the output gradient.
        Updates are masked to the anchor rows: non-seed features must stay
        zero, otherwise the loss (which only constrains seed embeddings)
        would overwrite the propagation geometry of every other entity.
        """
        params = {"x_source": x_source.copy(), "x_target": x_target.copy()}
        source_mask = np.zeros((x_source.shape[0], 1))
        source_mask[seed_pairs[:, 0]] = 1.0
        target_mask = np.zeros((x_target.shape[0], 1))
        target_mask[seed_pairs[:, 1]] = 1.0
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        for _ in range(self.fine_tune_epochs):
            source_out = _convolve(adj_source, params["x_source"], self.num_layers)
            target_out = _convolve(adj_target, params["x_target"], self.num_layers)
            neg_targets, neg_sources = sample_negatives(
                len(seed_pairs), x_source.shape[0], x_target.shape[0],
                self.negatives_per_pair, rng,
            )
            loss, d_src, d_tgt = margin_loss_and_grad(
                source_out, target_out, seed_pairs,
                neg_targets, neg_sources, margin=self.margin,
            )
            self.loss_history.append(loss)
            grads = {
                "x_source": _convolve_adjoint(adj_source, d_src, self.num_layers) * source_mask,
                "x_target": _convolve_adjoint(adj_target, d_tgt, self.num_layers) * target_mask,
            }
            optimizer.update(params, grads)
        return params["x_source"], params["x_target"]


def seed_anchor_features(
    num_source: int,
    num_target: int,
    seed_pairs: np.ndarray,
    dim: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random-projected seed-indicator features for both KGs.

    Each seed pair receives one shared Gaussian basis vector; every other
    entity starts at zero.  Shared by the GCN and RREA encoders.
    """
    basis = rng.normal(0.0, 1.0, (len(seed_pairs), dim)) / np.sqrt(dim)
    x_source = np.zeros((num_source, dim))
    x_target = np.zeros((num_target, dim))
    # add.at tolerates repeated seed entities (non-1-to-1 seed links).
    np.add.at(x_source, seed_pairs[:, 0], basis)
    np.add.at(x_target, seed_pairs[:, 1], basis)
    return x_source, x_target


def _convolve(adj: sp.csr_matrix, features: np.ndarray, num_layers: int) -> np.ndarray:
    output = features
    for _ in range(num_layers):
        output = adj @ output
    return output


def _convolve_adjoint(adj: sp.csr_matrix, d_output: np.ndarray, num_layers: int) -> np.ndarray:
    adj_t = adj.T.tocsr()
    grad = d_output
    for _ in range(num_layers):
        grad = adj_t @ grad
    return grad
