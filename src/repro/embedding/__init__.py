"""Representation-learning substrate.

The paper treats the representation-learning stage as a controlled
nuisance variable: matchers are compared on embeddings produced by a
strong encoder (RREA), a weak encoder (GCN), name embeddings (N-), and a
fusion of names and structure (NR-).  This package implements all four
sources from scratch in numpy:

* :class:`GCNEncoder` — two-layer graph convolution trained with a
  margin-based alignment loss over the seed pairs (the weak regime).
* :class:`RREAEncoder` — deeper relation-gated propagation with layer
  concatenation and inter-layer normalisation (the strong regime).
* :class:`NameEncoder` — character n-gram hashing vectors over entity
  display names (the N- regime; stands in for fastText vectors).
* :func:`fuse_embeddings` — weighted concatenation of structural and
  name embeddings (the NR- regime).
* :class:`OracleEncoder` — draws unified embeddings directly from the
  gold links with controllable noise/hubness; used to unit-test matchers
  in isolation from training and to drive large-scale benches cheaply.
"""

from repro.embedding.base import EmbeddingModel, UnifiedEmbeddings
from repro.embedding.fusion import fuse_embeddings
from repro.embedding.gcn import GCNEncoder
from repro.embedding.name_encoder import NameEncoder
from repro.embedding.oracle import OracleConfig, OracleEncoder
from repro.embedding.rrea import RREAEncoder
from repro.embedding.trainer import AdamOptimizer, margin_loss_and_grad, sample_negatives

__all__ = [
    "AdamOptimizer",
    "EmbeddingModel",
    "GCNEncoder",
    "NameEncoder",
    "OracleConfig",
    "OracleEncoder",
    "RREAEncoder",
    "UnifiedEmbeddings",
    "fuse_embeddings",
    "margin_loss_and_grad",
    "sample_negatives",
]
