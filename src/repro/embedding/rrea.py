"""RREA-style encoder (the paper's strong structural regime, "R-").

A numpy take on Relational Reflection Entity Alignment (Mao et al., CIKM
2020), keeping the ingredients that make RREA outperform a plain GCN
while staying tractable without autodiff:

1. **Relation-aware propagation** — edges are weighted by the inverse
   frequency of their relation (rare relations identify their endpoints
   more strongly), then row-normalised.
2. **Deep propagation with layer concatenation** — the output is
   ``[X, AX, ..., A^L X]``, exposing multi-hop structure, like RREA's
   concatenated attention layers.
3. **Bootstrapping / self-training** — confident mutual-nearest-neighbour
   pairs are promoted to pseudo-seeds and propagation is re-anchored, the
   iterative-training strategy of the strongest EA systems.
4. **Optional margin fine-tuning with hard negatives** — RREA's
   "normalized hard sample mining", via the shared trainer machinery.

Like the GCN encoder, supervision enters through seed-anchored features
(each seed pair shares a random basis vector); RREA's extra machinery is
what lifts it into the paper's "R-" quality regime.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.embedding.base import UnifiedEmbeddings
from repro.embedding.gcn import seed_anchor_features
from repro.embedding.trainer import AdamOptimizer, margin_loss_and_grad, sample_negatives
from repro.kg.graph import KnowledgeGraph
from repro.kg.pair import AlignmentTask
from repro.similarity.metrics import cosine_similarity
from repro.utils.rng import RandomState, ensure_rng


class RREAEncoder:
    """Relation-aware deep-propagation encoder with bootstrapping."""

    def __init__(
        self,
        dim: int = 256,
        num_layers: int = 3,
        bootstrap_rounds: int = 2,
        bootstrap_threshold: float = 0.5,
        fine_tune_epochs: int = 0,
        learning_rate: float = 0.02,
        margin: float = 1.0,
        negatives_per_pair: int = 5,
        seed: RandomState = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if bootstrap_rounds < 0:
            raise ValueError(f"bootstrap_rounds must be >= 0, got {bootstrap_rounds}")
        if not 0.0 <= bootstrap_threshold <= 1.0:
            raise ValueError(
                f"bootstrap_threshold must be in [0, 1], got {bootstrap_threshold}"
            )
        self.dim = dim
        self.num_layers = num_layers
        self.bootstrap_rounds = bootstrap_rounds
        self.bootstrap_threshold = bootstrap_threshold
        self.fine_tune_epochs = fine_tune_epochs
        self.learning_rate = learning_rate
        self.margin = margin
        self.negatives_per_pair = negatives_per_pair
        self.seed = seed
        self.loss_history: list[float] = []
        #: Anchor-pool sizes per bootstrap round, filled by :meth:`encode`.
        self.bootstrap_pool_sizes: list[int] = []

    # ------------------------------------------------------------------

    def encode(self, task: AlignmentTask) -> UnifiedEmbeddings:
        """Build unified embeddings for ``task`` (see module docstring)."""
        rng = ensure_rng(self.seed)
        seed_pairs = task.seed_index_pairs()
        if len(seed_pairs) == 0:
            raise ValueError("RREAEncoder requires at least one seed pair")
        adj_source = relation_weighted_adjacency(task.source)
        adj_target = relation_weighted_adjacency(task.target)

        self.loss_history = []
        self.bootstrap_pool_sizes = []
        anchors = seed_pairs
        source_out = target_out = None
        for round_index in range(self.bootstrap_rounds + 1):
            self.bootstrap_pool_sizes.append(len(anchors))
            x_source, x_target = seed_anchor_features(
                task.source.num_entities, task.target.num_entities,
                anchors, self.dim, rng,
            )
            if self.fine_tune_epochs:
                x_source, x_target = self._fine_tune(
                    adj_source, adj_target, x_source, x_target, anchors, rng
                )
            source_out = _propagate_concat(adj_source, x_source, self.num_layers)
            target_out = _propagate_concat(adj_target, x_target, self.num_layers)
            if round_index < self.bootstrap_rounds:
                anchors = self._expand_anchors(source_out, target_out, seed_pairs)
        return UnifiedEmbeddings(source_out, target_out).normalized()

    # ------------------------------------------------------------------

    def _expand_anchors(
        self, source_out: np.ndarray, target_out: np.ndarray, seed_pairs: np.ndarray
    ) -> np.ndarray:
        """Add confident mutual nearest neighbours as pseudo-seeds."""
        sim = cosine_similarity(source_out, target_out)
        forward = sim.argmax(axis=1)
        backward = sim.argmax(axis=0)
        source_ids = np.arange(sim.shape[0])
        mutual = backward[forward] == source_ids
        confident = sim[source_ids, forward] > self.bootstrap_threshold
        keep = mutual & confident
        pseudo = np.stack([source_ids[keep], forward[keep]], axis=1)
        if len(pseudo) == 0:
            return seed_pairs
        combined = np.vstack([seed_pairs, pseudo])
        return np.unique(combined, axis=0)

    def _fine_tune(
        self,
        adj_source: sp.csr_matrix,
        adj_target: sp.csr_matrix,
        x_source: np.ndarray,
        x_target: np.ndarray,
        anchors: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Margin refinement with hard negatives mined from the output.

        Like the GCN encoder, updates are masked to anchor rows so the
        propagation geometry of non-anchored entities survives.
        """
        params = {"x_source": x_source.copy(), "x_target": x_target.copy()}
        source_mask = np.zeros((x_source.shape[0], 1))
        source_mask[anchors[:, 0]] = 1.0
        target_mask = np.zeros((x_target.shape[0], 1))
        target_mask[anchors[:, 1]] = 1.0
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        neg_targets = neg_sources = None
        for epoch in range(self.fine_tune_epochs):
            source_out = _propagate_concat(adj_source, params["x_source"], self.num_layers)
            target_out = _propagate_concat(adj_target, params["x_target"], self.num_layers)
            if neg_targets is None or epoch % 10 == 0:
                neg_targets, neg_sources = self._mine_negatives(
                    source_out, target_out, anchors, rng
                )
            loss, d_src, d_tgt = margin_loss_and_grad(
                source_out, target_out, anchors,
                neg_targets, neg_sources, margin=self.margin,
            )
            self.loss_history.append(loss)
            grads = {
                "x_source": _propagate_adjoint(adj_source, d_src, self.dim, self.num_layers)
                * source_mask,
                "x_target": _propagate_adjoint(adj_target, d_tgt, self.dim, self.num_layers)
                * target_mask,
            }
            optimizer.update(params, grads)
        return params["x_source"], params["x_target"]

    def _mine_negatives(
        self,
        source_out: np.ndarray,
        target_out: np.ndarray,
        anchors: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hard negatives: each anchor's most-similar non-matching entities."""
        k = self.negatives_per_pair
        n_source, n_target = source_out.shape[0], target_out.shape[0]
        if n_target <= k + 1 or n_source <= k + 1:
            return sample_negatives(len(anchors), n_source, n_target, k, rng)
        sim_st = cosine_similarity(source_out[anchors[:, 0]], target_out)
        sim_st[np.arange(len(anchors)), anchors[:, 1]] = -np.inf
        neg_targets = np.argpartition(sim_st, n_target - k, axis=1)[:, -k:]
        sim_ts = cosine_similarity(target_out[anchors[:, 1]], source_out)
        sim_ts[np.arange(len(anchors)), anchors[:, 0]] = -np.inf
        neg_sources = np.argpartition(sim_ts, n_source - k, axis=1)[:, -k:]
        return neg_targets, neg_sources


def relation_weighted_adjacency(graph: KnowledgeGraph) -> sp.csr_matrix:
    """Row-normalised adjacency with inverse-relation-frequency weights.

    An edge labelled with a rare relation identifies its endpoints more
    strongly than one labelled with a ubiquitous relation, so it receives
    proportionally more propagation weight — the cheap stand-in for
    RREA's relational reflection.
    """
    n = graph.num_entities
    triples = graph.triple_ids
    if len(triples) == 0:
        return sp.eye(n, format="csr")
    relation_counts = np.bincount(triples[:, 1], minlength=graph.num_relations)
    weights = 1.0 / np.log2(2.0 + relation_counts[triples[:, 1]])
    rows = np.concatenate([triples[:, 0], triples[:, 2], np.arange(n)])
    cols = np.concatenate([triples[:, 2], triples[:, 0], np.arange(n)])
    data = np.concatenate([weights, weights, np.ones(n)])
    adj = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    row_sums = np.asarray(adj.sum(axis=1)).ravel()
    inv = sp.diags(1.0 / np.maximum(row_sums, 1e-12))
    return (inv @ adj).tocsr()


def _propagate_concat(adj: sp.csr_matrix, features: np.ndarray, num_layers: int) -> np.ndarray:
    """``[X, AX, ..., A^L X]`` concatenated along the feature axis."""
    layers = [features]
    current = features
    for _ in range(num_layers):
        current = adj @ current
        layers.append(current)
    return np.concatenate(layers, axis=1)


def _propagate_adjoint(
    adj: sp.csr_matrix, d_output: np.ndarray, dim: int, num_layers: int
) -> np.ndarray:
    """Exact gradient of the concatenated linear propagation w.r.t. X."""
    adj_t = adj.T.tocsr()
    d_features = np.zeros((d_output.shape[0], dim))
    for layer in range(num_layers + 1):
        slice_grad = d_output[:, layer * dim:(layer + 1) * dim]
        for _ in range(layer):
            slice_grad = adj_t @ slice_grad
        d_features += slice_grad
    return d_features
