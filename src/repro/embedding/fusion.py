"""Embedding fusion (the paper's NR- setting).

The strongest input regime in the paper fuses name embeddings with RREA
structural embeddings.  Following common practice in the feature-fusion
EA literature, we L2-normalise each view and concatenate them with a
weight on the name view; cosine similarity on the fused vectors is then
the weighted average of the per-view similarities.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import UnifiedEmbeddings


def fuse_embeddings(
    structural: UnifiedEmbeddings,
    name: UnifiedEmbeddings,
    name_weight: float = 0.7,
) -> UnifiedEmbeddings:
    """Weighted concatenation of two unified-embedding views.

    ``name_weight`` in [0, 1] sets the relative contribution of the name
    view to cosine similarities on the fused space (0 = structure only,
    1 = names only).
    """
    if not 0.0 <= name_weight <= 1.0:
        raise ValueError(f"name_weight must be in [0, 1], got {name_weight}")
    if structural.source.shape[0] != name.source.shape[0]:
        raise ValueError(
            "structural and name views disagree on source entity count: "
            f"{structural.source.shape[0]} vs {name.source.shape[0]}"
        )
    if structural.target.shape[0] != name.target.shape[0]:
        raise ValueError(
            "structural and name views disagree on target entity count: "
            f"{structural.target.shape[0]} vs {name.target.shape[0]}"
        )
    structural = structural.normalized()
    name = name.normalized()
    structure_weight = np.sqrt(1.0 - name_weight)
    name_scale = np.sqrt(name_weight)
    source = np.concatenate(
        [structure_weight * structural.source, name_scale * name.source], axis=1
    )
    target = np.concatenate(
        [structure_weight * structural.target, name_scale * name.target], axis=1
    )
    return UnifiedEmbeddings(source, target)
