"""Oracle embeddings: controllable unified spaces drawn from gold links.

Matching algorithms must be testable — and benchmarked — in isolation
from representation learning.  The :class:`OracleEncoder` skips training
entirely and samples a unified space directly from a task's gold links,
with three geometry knobs that control exactly the embedding-space
statistics the paper's analysis turns on:

* ``noise`` — per-side Gaussian perturbation of each entity's latent
  (the encoder-quality knob: 0 = Figure 1 case a, large = case c).
* ``cluster_size`` / ``cluster_spread`` — latents are arranged in tight
  semantic clusters.  When ``noise`` is comparable to
  ``cluster_spread``, greedy decoding scrambles entities *within* a
  cluster while the global bijection stays recoverable — the hubness/
  crowding regime that CSLS, RInf and the assignment-based matchers
  exploit (paper Patterns 1-2).  Large spread with small noise gives
  discriminative scores where the global-constraint methods shine
  instead.
* ``noise_dispersion`` — log-normal per-entity noise scaling; high
  dispersion creates the *isolated* outliers CSLS compensates for.

GPU-trained 300-dim encoders produce crowded, hub-ridden spaces that a
laptop-scale propagation trainer cannot reproduce; the experiment
harness therefore runs the paper's tables on oracle spaces whose
geometry is calibrated per encoder regime (see
:mod:`repro.experiments.regimes`), while the real trainable encoders in
this package remain the demonstration path.  This substitution is
documented in DESIGN.md.

Unlinked entities (e.g. grafted unmatchables) get independent latents in
the same clustered geometry, so they are plausible distractors with no
true counterpart.  Non-1-to-1 link clusters share one latent, so any
copy is a plausible match for any opposite copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.base import UnifiedEmbeddings
from repro.kg.pair import AlignmentTask
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class OracleConfig:
    """Geometry knobs for oracle embeddings (see module docstring)."""

    dim: int = 64
    noise: float = 0.4
    cluster_size: int = 5
    cluster_spread: float = 0.2
    noise_dispersion: float = 0.0
    #: Fraction of variance shared with one global direction — models the
    #: oversmoothing of weak graph encoders, where all embeddings crowd
    #: around the dominant eigenvector and similarities compress.
    smoothing: float = 0.0
    #: Extra jitter between members of one non-1-to-1 link cluster, so
    #: duplicates are near but not identical.
    duplicate_jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.noise < 0:
            raise ValueError(f"noise must be non-negative, got {self.noise}")
        if self.cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {self.cluster_size}")
        if self.cluster_spread < 0:
            raise ValueError(f"cluster_spread must be non-negative, got {self.cluster_spread}")
        if self.noise_dispersion < 0:
            raise ValueError(
                f"noise_dispersion must be non-negative, got {self.noise_dispersion}"
            )
        if not 0.0 <= self.smoothing < 1.0:
            raise ValueError(f"smoothing must be in [0, 1), got {self.smoothing}")


class OracleEncoder:
    """Draws unified embeddings directly from a task's gold links."""

    def __init__(self, config: OracleConfig | None = None, seed: RandomState = None) -> None:
        self.config = config or OracleConfig()
        self._seed_override = seed

    def encode(self, task: AlignmentTask) -> UnifiedEmbeddings:
        """Unified embeddings whose geometry follows :class:`OracleConfig`."""
        config = self.config
        seed = self._seed_override if self._seed_override is not None else config.seed
        latent_rng, source_rng, target_rng = spawn_rngs(ensure_rng(seed), 3)

        source_cluster, target_cluster, num_linked, total_latents = (
            self._latent_assignment(task)
        )
        latents = self._clustered_latents(num_linked, total_latents, latent_rng)
        source = self._side(latents, source_cluster, source_rng)
        target = self._side(latents, target_cluster, target_rng)
        return UnifiedEmbeddings(source, target).normalized()

    # ------------------------------------------------------------------

    def _latent_assignment(
        self, task: AlignmentTask
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Latent index per entity on each side.

        Entities connected by gold links share a latent; every other
        entity gets its own fresh latent.  Returns
        ``(source_cluster, target_cluster, num_linked, total)`` — linked
        latents occupy ids ``[0, num_linked)``.
        """
        clusters = _link_clusters(task)
        source_cluster = np.full(task.source.num_entities, -1, dtype=np.int64)
        target_cluster = np.full(task.target.num_entities, -1, dtype=np.int64)
        for cluster_id, (source_ids, target_ids) in enumerate(clusters):
            source_cluster[source_ids] = cluster_id
            target_cluster[target_ids] = cluster_id
        next_id = len(clusters)
        for idx in np.flatnonzero(source_cluster < 0):
            source_cluster[idx] = next_id
            next_id += 1
        for idx in np.flatnonzero(target_cluster < 0):
            target_cluster[idx] = next_id
            next_id += 1
        return source_cluster, target_cluster, len(clusters), next_id

    def _clustered_latents(
        self, num_linked: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Unit latents; the linked ones arranged in tight clusters.

        Only latents of *linked* entities join the crowded semantic
        clusters; unlinked entities (e.g. the grafted unmatchables) get
        their own fresh centers, so they are distractors rather than
        perfect impostors — which is what keeps them separable enough
        for dummy-node absorption (paper Section 5.1).
        """
        config = self.config
        num_link_centers = (num_linked + config.cluster_size - 1) // config.cluster_size
        num_centers = num_link_centers + (count - num_linked)
        centers = rng.normal(0.0, 1.0, (max(num_centers, 1), config.dim))
        centers /= np.maximum(np.linalg.norm(centers, axis=1, keepdims=True), 1e-12)
        # Shuffled assignment so geometric clusters do not correlate with
        # latent-id order (which correlates with entity ids).
        linked_assignment = rng.permutation(
            np.repeat(np.arange(num_link_centers), config.cluster_size)[:num_linked]
        )
        extra_assignment = np.arange(num_link_centers, num_centers)
        assignment = np.concatenate([linked_assignment, extra_assignment]).astype(np.int64)
        latents = centers[assignment] + rng.normal(
            0.0, config.cluster_spread / np.sqrt(config.dim), (count, config.dim)
        )
        latents /= np.maximum(np.linalg.norm(latents, axis=1, keepdims=True), 1e-12)
        if config.smoothing > 0:
            # Mix in one global direction: the oversmoothing of weak
            # encoders, which compresses all pairwise similarities.
            global_direction = rng.normal(0.0, 1.0, config.dim)
            global_direction /= max(np.linalg.norm(global_direction), 1e-12)
            latents = (
                np.sqrt(1.0 - config.smoothing) * latents
                + np.sqrt(config.smoothing) * global_direction
            )
        return latents

    def _side(
        self, latents: np.ndarray, cluster_of: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        config = self.config
        base = latents[cluster_of]
        scale = np.full((base.shape[0], 1), config.noise)
        if config.noise_dispersion > 0:
            scale = scale * np.exp(
                rng.normal(0.0, config.noise_dispersion, (base.shape[0], 1))
            )
        noise = rng.normal(0.0, 1.0, base.shape) * scale / np.sqrt(config.dim)
        jitter = rng.normal(0.0, config.duplicate_jitter / np.sqrt(config.dim), base.shape)
        return base + noise + jitter


def _link_clusters(task: AlignmentTask) -> list[tuple[np.ndarray, np.ndarray]]:
    """Connected components of the gold-link bipartite graph, as id arrays.

    A 1-to-1 link is a singleton cluster; non-1-to-1 clusters group every
    source/target copy of the same real-world entity.
    """
    parent: dict[tuple[str, int], tuple[str, int]] = {}

    def find(node: tuple[str, int]) -> tuple[str, int]:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    links = task.split.all_links
    for source_name, target_name in links:
        a = ("s", task.source.entity_id(source_name))
        b = ("t", task.target.entity_id(target_name))
        parent[find(a)] = find(b)

    groups: dict[tuple[str, int], tuple[list[int], list[int]]] = {}
    seen: set[tuple[str, int]] = set()
    for source_name, target_name in links:
        for node in (
            ("s", task.source.entity_id(source_name)),
            ("t", task.target.entity_id(target_name)),
        ):
            if node in seen:
                continue
            seen.add(node)
            sources, targets = groups.setdefault(find(node), ([], []))
            if node[0] == "s":
                sources.append(node[1])
            else:
                targets.append(node[1])
    return [
        (np.array(sources, dtype=np.int64), np.array(targets, dtype=np.int64))
        for sources, targets in groups.values()
    ]
