"""Character n-gram name embeddings (the paper's N- setting).

The paper's auxiliary-information runs feed entity *name* embeddings
(fastText / averaged word vectors) into the matchers.  Offline we hash
character n-grams of each entity's display name into a fixed-size vector
— the same family of representation fastText uses for subwords — so
equivalent entities with similar surface forms get similar vectors, and
the dataset generator's ``name_edit_rate`` directly controls signal
quality (identical names -> identical vectors).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embedding.base import UnifiedEmbeddings
from repro.kg.pair import AlignmentTask


class NameEncoder:
    """Hash character n-grams of display names into unit vectors."""

    def __init__(self, dim: int = 64, ngram_sizes: tuple[int, ...] = (2, 3)) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not ngram_sizes or any(n < 1 for n in ngram_sizes):
            raise ValueError(f"ngram_sizes must be positive, got {ngram_sizes}")
        self.dim = dim
        self.ngram_sizes = tuple(ngram_sizes)

    def encode(self, task: AlignmentTask) -> UnifiedEmbeddings:
        """Embed both KGs' entity names; rows align with entity indices.

        Entities without a display name fall back to their internal id
        string (which never matches across KGs, i.e. carries no signal —
        exactly the situation for unmatchable grafted entities).
        """
        source = np.stack([
            self.encode_name(task.display_name("source", entity))
            for entity in task.source.entities
        ])
        target = np.stack([
            self.encode_name(task.display_name("target", entity))
            for entity in task.target.entities
        ])
        return UnifiedEmbeddings(source, target)

    def encode_name(self, name: str) -> np.ndarray:
        """Unit vector for a single name (deterministic across runs)."""
        vector = np.zeros(self.dim)
        padded = f"^{name}$"
        for size in self.ngram_sizes:
            if len(padded) < size:
                continue
            for start in range(len(padded) - size + 1):
                ngram = padded[start:start + size]
                bucket, sign = self._hash(ngram)
                vector[bucket] += sign
        norm = np.linalg.norm(vector)
        if norm < 1e-12:
            # Degenerate (too-short) name: deterministic pseudo-random unit
            # vector so downstream cosine math stays well-defined.
            bucket, sign = self._hash(name or "?")
            vector[bucket] = sign
            norm = 1.0
        return vector / norm

    def _hash(self, ngram: str) -> tuple[int, float]:
        """Stable (bucket, sign) pair for an n-gram.

        Uses blake2b rather than ``hash()`` so vectors do not change with
        Python's per-process hash randomisation.
        """
        digest = hashlib.blake2b(ngram.encode("utf-8"), digest_size=8).digest()
        value = int.from_bytes(digest, "little")
        bucket = value % self.dim
        sign = 1.0 if (value >> 32) % 2 == 0 else -1.0
        return bucket, sign
